#include "core/estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace pas::core {
namespace {

PeerObservation covered_peer(std::uint32_t id, geom::Vec2 pos,
                             sim::Time detected, geom::Vec2 vel = {},
                             bool vel_valid = false) {
  PeerObservation o;
  o.id = id;
  o.position = pos;
  o.state = NodeState::kCovered;
  o.detected_at = detected;
  o.velocity = vel;
  o.velocity_valid = vel_valid;
  o.received_at = detected;
  return o;
}

PeerObservation alert_peer(std::uint32_t id, geom::Vec2 pos, geom::Vec2 vel,
                           sim::Time predicted, sim::Time received = 0.0) {
  PeerObservation o;
  o.id = id;
  o.position = pos;
  o.state = NodeState::kAlert;
  o.velocity = vel;
  o.velocity_valid = true;
  o.predicted_arrival = predicted;
  o.received_at = received;
  return o;
}

// ---------------------------------------------------------------- formula 1

TEST(ActualVelocity, SinglePeerGivesExactFormula) {
  // Peer I at origin detected at t=0; X at (4,0) detected at t=8:
  // v = IX/dt = (0.5, 0).
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0)};
  const auto v = actual_velocity({4.0, 0.0}, 8.0, peers);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(v->x, 0.5, 1e-12);
  EXPECT_NEAR(v->y, 0.0, 1e-12);
}

TEST(ActualVelocity, AveragesOverPeers) {
  // Two symmetric peers: transverse components cancel, radial ones average.
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 1.0}, 0.0),
      covered_peer(2, {0.0, -1.0}, 0.0)};
  const auto v = actual_velocity({2.0, 0.0}, 4.0, peers);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(v->x, 0.5, 1e-12);
  EXPECT_NEAR(v->y, 0.0, 1e-12);
}

TEST(ActualVelocity, IgnoresNonCoveredAndLaterPeers) {
  std::vector<PeerObservation> peers{
      alert_peer(1, {0.0, 0.0}, {1.0, 0.0}, 5.0),   // alert: skip
      covered_peer(2, {1.0, 0.0}, 9.0),             // detected after X: skip
  };
  EXPECT_FALSE(actual_velocity({4.0, 0.0}, 8.0, peers).has_value());
}

TEST(ActualVelocity, SkipsNearSimultaneousDetections) {
  // A peer detected (almost) simultaneously sits on the same front line:
  // the chord is tangential and carries no propagation signal, so it is
  // skipped rather than producing a huge bogus velocity.
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 8.0 - 1e-9),   // tangential: skipped
      covered_peer(2, {0.0, -2.0}, 4.0)};        // genuine earlier crossing
  const auto v = actual_velocity({4.0, 0.0}, 8.0, peers, 1.0);
  ASSERT_TRUE(v.has_value());
  // Only peer 2 contributes: IX = (4,2), dt = 4.
  EXPECT_NEAR(v->x, 1.0, 1e-12);
  EXPECT_NEAR(v->y, 0.5, 1e-12);
}

TEST(ActualVelocity, AllTangentialPeersGiveNothing) {
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 7.9), covered_peer(2, {1.0, 1.0}, 7.5)};
  EXPECT_FALSE(actual_velocity({4.0, 0.0}, 8.0, peers, 1.0).has_value());
}

TEST(ActualVelocity, SkipsColocatedPeer) {
  const std::vector<PeerObservation> peers{
      covered_peer(1, {4.0, 0.0}, 1.0)};
  EXPECT_FALSE(actual_velocity({4.0, 0.0}, 8.0, peers).has_value());
}

TEST(ActualVelocity, EmptyPeersGiveNothing) {
  EXPECT_FALSE(actual_velocity({0.0, 0.0}, 1.0, {}).has_value());
}

// ---------------------------------------------------------------- formula 2

TEST(ExpectedVelocity, AveragesValidPeerVelocities) {
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {1.0, 0.0}, true),
      alert_peer(2, {1.0, 1.0}, {0.0, 1.0}, 10.0)};
  const auto v = expected_velocity(peers);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(v->x, 0.5, 1e-12);
  EXPECT_NEAR(v->y, 0.5, 1e-12);
}

TEST(ExpectedVelocity, SkipsInvalidAndSafePeers) {
  PeerObservation safe;
  safe.id = 3;
  safe.state = NodeState::kSafe;
  safe.velocity = {100.0, 0.0};
  safe.velocity_valid = true;
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0),  // velocity invalid
      safe,                              // safe peers excluded by formula 2
  };
  EXPECT_FALSE(expected_velocity(peers).has_value());
}

// ---------------------------------------------------------------- formula 3

TEST(PredictArrival, CoveredPeerWithCosineProjection) {
  // Peer at origin, front velocity (1,0), X at distance 5 at 37° above the
  // axis: travel = |IX|·cosφ / v = 5·cos(0.6435) / 1 = 4.
  const geom::Vec2 x{4.0, 3.0};
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 10.0, {1.0, 0.0}, true)};
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  const sim::Time t = predict_arrival(x, 10.0, peers, pas);
  EXPECT_NEAR(t, 10.0 + 4.0, 1e-9);
}

TEST(PredictArrival, ScalarPolicyOverestimatesObliqueTravel) {
  const geom::Vec2 x{4.0, 3.0};
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 10.0, {1.0, 0.0}, true)};
  const PredictionPolicy sas{.use_alert_peers = false,
                             .cosine_projection = false};
  const sim::Time t = predict_arrival(x, 10.0, peers, sas);
  EXPECT_NEAR(t, 10.0 + 5.0, 1e-9);  // |IX|/v, no cos
}

TEST(PredictArrival, FrontMovingAwayPredictsNever) {
  // Velocity points away from X.
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {-1.0, 0.0}, true)};
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  EXPECT_EQ(predict_arrival({5.0, 0.0}, 0.0, peers, pas), sim::kNever);
}

TEST(PredictArrival, ScalarPolicyIgnoresDirection) {
  // SAS's scalar estimate alerts even when the front moves away — one of
  // the inaccuracies PAS fixes.
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {-1.0, 0.0}, true)};
  const PredictionPolicy sas{.use_alert_peers = false,
                             .cosine_projection = false};
  EXPECT_NEAR(predict_arrival({5.0, 0.0}, 0.0, peers, sas), 5.0, 1e-9);
}

TEST(PredictArrival, TakesMinimumOverPeers) {
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {1.0, 0.0}, true),   // t = 10
      covered_peer(2, {5.0, 0.0}, 2.0, {1.0, 0.0}, true)};  // t = 2 + 5 = 7
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  EXPECT_NEAR(predict_arrival({10.0, 0.0}, 2.0, peers, pas), 7.0, 1e-9);
}

TEST(PredictArrival, AlertPeerUsesItsOwnPrediction) {
  const std::vector<PeerObservation> peers{
      alert_peer(1, {0.0, 0.0}, {1.0, 0.0}, /*predicted=*/20.0)};
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  // Front passes the peer at t=20, then needs 5 s to X.
  EXPECT_NEAR(predict_arrival({5.0, 0.0}, 0.0, peers, pas), 25.0, 1e-9);
}

TEST(PredictArrival, AlertPeersIgnoredUnderSasPolicy) {
  const std::vector<PeerObservation> peers{
      alert_peer(1, {0.0, 0.0}, {1.0, 0.0}, 20.0)};
  const PredictionPolicy sas{.use_alert_peers = false,
                             .cosine_projection = false};
  EXPECT_EQ(predict_arrival({5.0, 0.0}, 0.0, peers, sas), sim::kNever);
}

TEST(PredictArrival, ImminentLateFrontKeepsRawEstimate) {
  // Peer info says the front should have arrived moments ago (within the
  // overdue tolerance): the raw past estimate is returned, not clamped —
  // clamping would make re-broadcast predictions look perpetually fresh.
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {1.0, 0.0}, true)};
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  EXPECT_DOUBLE_EQ(predict_arrival({1.0, 0.0}, 3.0, peers, pas), 1.0);
}

TEST(PredictArrival, OverduePredictionsAreFalsified) {
  // The front "should" have reached X at t = 1 but demonstrably did not
  // (it is now t = 50 and X senses nothing): the stale contribution is
  // discarded instead of keeping X alert forever.
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {1.0, 0.0}, true)};
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  EXPECT_EQ(predict_arrival({1.0, 0.0}, 50.0, peers, pas), sim::kNever);
}

TEST(PredictArrival, OverdueToleranceConfigurable) {
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {1.0, 0.0}, true)};
  PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  pas.overdue_tolerance_s = 100.0;
  EXPECT_DOUBLE_EQ(predict_arrival({1.0, 0.0}, 50.0, peers, pas), 1.0);
}

TEST(PredictArrival, ZeroSpeedPeerSkipped) {
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {0.0, 0.0}, true)};
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  EXPECT_EQ(predict_arrival({5.0, 0.0}, 0.0, peers, pas), sim::kNever);
}

TEST(PredictArrival, AtPeerPositionFrontIsHere) {
  const std::vector<PeerObservation> peers{
      covered_peer(1, {3.0, 3.0}, 1.0, {1.0, 0.0}, true)};
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  EXPECT_DOUBLE_EQ(predict_arrival({3.0, 3.0}, 5.0, peers, pas), 5.0);
}

// Property sweep over geometry: the PAS (cosine) travel time never exceeds
// the SAS (scalar) travel time, for any peer bearing — the mechanism behind
// the paper's "more accurate prediction" claim.
class ProjectionProperty : public ::testing::TestWithParam<double> {};

TEST_P(ProjectionProperty, CosineNeverExceedsScalarTravel) {
  const double bearing = GetParam();
  const geom::Vec2 x = geom::Vec2::from_polar(6.0, bearing);
  const std::vector<PeerObservation> peers{
      covered_peer(1, {0.0, 0.0}, 0.0, {0.8, 0.0}, true)};
  const PredictionPolicy pas{.use_alert_peers = true, .cosine_projection = true};
  const PredictionPolicy sas{.use_alert_peers = false,
                             .cosine_projection = false};
  const sim::Time t_pas = predict_arrival(x, 0.0, peers, pas);
  const sim::Time t_sas = predict_arrival(x, 0.0, peers, sas);
  ASSERT_LT(t_sas, sim::kNever);
  if (t_pas < sim::kNever) {
    EXPECT_LE(t_pas, t_sas + 1e-9);
  } else {
    // PAS predicts never only when the front moves away (cos φ <= 0).
    EXPECT_GE(std::abs(bearing), std::numbers::pi / 2.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Bearings, ProjectionProperty,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0, 1.4,
                                           std::numbers::pi / 2.0, 2.0, 2.8,
                                           -0.5, -1.2, -2.0, 3.1));

// --------------------------------------------------------- significance

TEST(SignificantChange, AppearanceAndDisappearance) {
  EXPECT_TRUE(significant_change(sim::kNever, 10.0, 0.0));
  EXPECT_TRUE(significant_change(10.0, sim::kNever, 0.0));
  EXPECT_FALSE(significant_change(sim::kNever, sim::kNever, 0.0));
}

TEST(SignificantChange, RelativeThreshold) {
  // Previous prediction 100 s out; 20% tolerance = 20 s.
  EXPECT_FALSE(significant_change(100.0, 110.0, 0.0, 0.2, 0.5));
  EXPECT_TRUE(significant_change(100.0, 130.0, 0.0, 0.2, 0.5));
}

TEST(SignificantChange, AbsoluteFloorNearNow) {
  // Remaining time ~0 => tolerance = floor.
  EXPECT_FALSE(significant_change(10.0, 10.3, 10.0, 0.2, 0.5));
  EXPECT_TRUE(significant_change(10.0, 10.9, 10.0, 0.2, 0.5));
}

}  // namespace
}  // namespace pas::core

// Protocol edge cases beyond the happy paths of test_protocol.cpp:
// message-handling rules per state, push rate limiting, covered-node
// velocity recovery, and receding-stimulus behavior.
#include <gtest/gtest.h>

#include <memory>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "stimulus/plume.hpp"
#include "stimulus/radial_front.hpp"

namespace pas::core {
namespace {

// Tight three-node cluster (all within range of each other) 12 m from the
// source; isotropic front at 0.5 m/s released at t = 5.
struct ClusterWorld {
  explicit ClusterWorld(ProtocolConfig config) {
    stimulus::RadialFrontConfig scfg;
    scfg.source = {0.0, 0.0};
    scfg.base_speed = 0.5;
    scfg.start_time = 5.0;
    model = std::make_unique<stimulus::RadialFrontModel>(scfg);
    positions = {{12.0, 0.0}, {14.0, 1.5}, {15.5, -1.0}};
    build(std::move(config));
  }

  void build(ProtocolConfig config) {
    arrivals = stimulus::ArrivalMap(*model, positions, 200.0);
    network = std::make_unique<net::Network>(
        simulator, positions, net::RadioConfig{},
        std::make_shared<net::PerfectChannel>(), seeds);
    nodes.resize(positions.size());
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      nodes[i].id = i;
      nodes[i].position = positions[i];
      nodes[i].meter = energy::EnergyMeter(energy::PowerProfile::telos(), 0.0,
                                           energy::PowerMode::kActive);
      nodes[i].arrival = arrivals.at(i);
    }
    protocol = std::make_unique<Protocol>(simulator, *network, nodes, *model,
                                          arrivals, config, seeds, nullptr,
                                          &trace);
  }

  sim::Simulator simulator;
  sim::SeedSequence seeds{99};
  std::unique_ptr<stimulus::StimulusModel> model;
  std::vector<geom::Vec2> positions;
  stimulus::ArrivalMap arrivals;
  std::unique_ptr<net::Network> network;
  std::vector<node::SensorNode> nodes;
  sim::TraceLog trace;
  std::unique_ptr<Protocol> protocol;
};

TEST(ProtocolEdge, NearSimultaneousDetectionsRecoverVelocity) {
  // All three nodes are covered within ~4 s of each other; the later ones
  // can use formula 1, and even the first (no earlier peer) must
  // eventually carry a velocity via the recovery path so downstream
  // prediction is not starved.
  ClusterWorld w(ProtocolConfig::pas());
  w.protocol->start();
  w.simulator.run_until(120.0);
  int with_velocity = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.protocol->state_of(i), NodeState::kCovered);
    if (w.protocol->velocity_valid_of(i)) ++with_velocity;
  }
  EXPECT_GE(with_velocity, 2);
}

TEST(ProtocolEdge, PushRateLimited) {
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.min_push_gap_s = 5.0;  // aggressive brake
  ClusterWorld w(cfg);
  w.protocol->start();
  w.simulator.run_until(120.0);
  // With a 5 s gap over a ~115 s run, each node can push at most ~23 times.
  EXPECT_LE(w.protocol->stats().responses_pushed, 3U * 24U);
}

TEST(ProtocolEdge, SasNodesNeverUseAlertPeerInfo) {
  ClusterWorld w(ProtocolConfig::sas());
  w.protocol->start();
  w.simulator.run_until(120.0);
  // SAS alert nodes stay quiet: no pushes at all, and every response is a
  // reply from a covered node (answers to wake-up REQUESTs) or a covered
  // node's own estimate broadcast.
  EXPECT_EQ(w.protocol->stats().responses_pushed, 0U);
}

TEST(ProtocolEdge, RecedingPlumeSendsNodesBackToSafe) {
  // A small plume washes over the cluster and dissolves; nodes must return
  // to safe via the detection timeout and resume sleeping.
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.covered_timeout_s = 8.0;

  stimulus::GaussianPlumeConfig pcfg;
  pcfg.source = {10.0, 0.0};
  pcfg.mass = 150.0;
  pcfg.diffusivity = 1.5;
  pcfg.threshold = 0.08;
  pcfg.start_time = 5.0;

  ClusterWorld w(cfg);
  w.model = std::make_unique<stimulus::GaussianPlumeModel>(pcfg);
  w.build(cfg);
  w.protocol->start();
  w.simulator.run_until(400.0);

  EXPECT_GT(w.protocol->stats().covered_entries, 0U);
  EXPECT_GT(w.protocol->stats().covered_timeouts, 0U);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.protocol->state_of(i), NodeState::kSafe) << "node " << i;
  }
}

TEST(ProtocolEdge, ZeroAlertThresholdNeverAlerts) {
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.alert_threshold_s = 0.0;
  ClusterWorld w(cfg);
  w.protocol->start();
  w.simulator.run_until(120.0);
  EXPECT_EQ(w.protocol->stats().alert_entries, 0U);
  // Everyone still detects via duty-cycled sensing.
  for (const auto& n : w.nodes) EXPECT_TRUE(n.has_detected());
}

TEST(ProtocolEdge, ObservationTtlExpiresStaleEntries) {
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.observation_ttl_s = 1.0;  // near-immediate expiry
  ClusterWorld w(cfg);
  w.protocol->start();
  // Even with instantly-stale tables the protocol must run to completion
  // and detect everywhere (predictions just get thinner).
  w.simulator.run_until(120.0);
  for (const auto& n : w.nodes) EXPECT_TRUE(n.has_detected());
}

TEST(ProtocolEdge, NsIgnoresFailedNodesGracefully) {
  node::FailureConfig kill;
  kill.fraction = 1.0;  // everyone dies...
  kill.window_start_s = 0.5;
  kill.window_end_s = 1.0;  // ...before the stimulus is released (t = 5)
  const node::FailurePlan plan(3, kill, sim::Pcg32(1, 2));

  ClusterWorld w(ProtocolConfig::never_sleep());
  Protocol protocol(w.simulator, *w.network, w.nodes, *w.model, w.arrivals,
                    ProtocolConfig::never_sleep(), w.seeds, &plan);
  protocol.start();
  w.simulator.run_until(60.0);
  for (const auto& n : w.nodes) {
    EXPECT_TRUE(n.failed);
    EXPECT_FALSE(n.has_detected());
  }
  EXPECT_EQ(protocol.stats().failures, 3U);
}

TEST(ProtocolEdge, MeterModesTrackSleepState) {
  ClusterWorld w(ProtocolConfig::pas());
  w.protocol->start();
  w.simulator.run_until(2.0);  // before any arrival: nodes duty-cycling
  for (const auto& n : w.nodes) {
    const auto mode = n.meter.mode();
    if (n.asleep) {
      EXPECT_EQ(mode, energy::PowerMode::kSleep);
    } else {
      EXPECT_EQ(mode, energy::PowerMode::kActive);
    }
  }
}

}  // namespace
}  // namespace pas::core

// The pluggable sleeping-policy layer: registry resolution, per-policy
// configuration validation, and the hook semantics each policy promises.
#include "core/policy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pas::core {
namespace {

// --- Registry --------------------------------------------------------------

TEST(PolicyRegistry, ListsAllFivePoliciesInEnumOrder) {
  const auto reg = policy_registry();
  ASSERT_EQ(reg.size(), 5U);
  EXPECT_EQ(reg[0].name, "NS");
  EXPECT_EQ(reg[1].name, "SAS");
  EXPECT_EQ(reg[2].name, "PAS");
  EXPECT_EQ(reg[3].name, "DutyCycle");
  EXPECT_EQ(reg[4].name, "ThresholdHold");
  for (const auto& info : reg) {
    EXPECT_EQ(std::string_view(to_string(info.kind)), info.name);
    EXPECT_FALSE(info.summary.empty());
  }
}

TEST(PolicyRegistry, FindPolicyResolvesNamesExactly) {
  ASSERT_NE(find_policy("PAS"), nullptr);
  EXPECT_EQ(find_policy("PAS")->kind, Policy::kPas);
  EXPECT_EQ(find_policy("ThresholdHold")->kind, Policy::kThresholdHold);
  EXPECT_EQ(find_policy("pas"), nullptr);   // case-sensitive
  EXPECT_EQ(find_policy("PAS "), nullptr);  // no trimming
  EXPECT_EQ(find_policy(""), nullptr);
}

TEST(PolicyRegistry, UnknownNameThrowsListingRegisteredNames) {
  try {
    (void)policy_from_name("LPL");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("LPL"), std::string::npos);
    // The message must teach the valid spellings.
    for (const char* name : {"NS", "SAS", "PAS", "DutyCycle", "ThresholdHold"}) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST(PolicyRegistry, MakePolicyMatchesConfiguredKind) {
  ProtocolConfig cfg;
  for (const auto& info : policy_registry()) {
    cfg.policy = info.kind;
    const auto policy = make_policy(cfg);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), info.kind);
    EXPECT_EQ(policy->name(), info.name);
  }
}

// --- Per-policy config validation ------------------------------------------

TEST(PolicyConfig, DutyCyclePeriodMustBePositive) {
  ProtocolConfig cfg;
  cfg.duty_cycle.period_s = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.duty_cycle.period_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.duty_cycle.period_s = 0.5;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PolicyConfig, HoldWindowMustBeNonNegative) {
  ProtocolConfig cfg;
  cfg.threshold_hold.hold_window_s = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.threshold_hold.hold_window_s = 0.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PolicyConfig, BlocksValidateRegardlessOfSelectedPolicy) {
  // A campaign may sweep the policy axis over one base config, so a broken
  // DutyCycle block must fail even when the config currently selects PAS.
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.duty_cycle.period_s = -3.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// --- Extracted paper policies keep their engine contracts -------------------

TEST(PaperPolicies, FlagParity) {
  ProtocolConfig cfg;

  cfg.policy = Policy::kNeverSleep;
  const auto ns = make_policy(cfg);
  EXPECT_FALSE(ns->sleeps());
  EXPECT_FALSE(ns->wants_alert_participation());
  EXPECT_FALSE(ns->covered_nodes_estimate());

  cfg.policy = Policy::kSas;
  const auto sas = make_policy(cfg);
  EXPECT_TRUE(sas->sleeps());
  EXPECT_FALSE(sas->wants_alert_participation());
  EXPECT_TRUE(sas->covered_nodes_estimate());
  EXPECT_FALSE(sas->prediction_policy(NodeState::kSafe).use_alert_peers);
  EXPECT_FALSE(sas->prediction_policy(NodeState::kSafe).cosine_projection);

  cfg.policy = Policy::kPas;
  const auto pas = make_policy(cfg);
  EXPECT_TRUE(pas->wants_alert_participation());
  EXPECT_TRUE(pas->prediction_policy(NodeState::kSafe).use_alert_peers);
  EXPECT_TRUE(pas->prediction_policy(NodeState::kSafe).cosine_projection);
}

TEST(PaperPolicies, StateDependentOverdueTolerance) {
  ProtocolConfig cfg;
  cfg.prediction_overdue_tolerance_s = 7.0;
  cfg.alert_overdue_hold_s = 19.0;
  for (Policy p : {Policy::kSas, Policy::kPas, Policy::kThresholdHold}) {
    cfg.policy = p;
    const auto policy = make_policy(cfg);
    EXPECT_DOUBLE_EQ(
        policy->prediction_policy(NodeState::kSafe).overdue_tolerance_s, 7.0);
    EXPECT_DOUBLE_EQ(
        policy->prediction_policy(NodeState::kAlert).overdue_tolerance_s, 19.0);
  }
}

TEST(PaperPolicies, RampAndAlertSemantics) {
  ProtocolConfig cfg;
  cfg.policy = Policy::kPas;
  cfg.alert_threshold_s = 20.0;
  cfg.sleep.initial_s = 1.0;
  cfg.sleep.increment_s = 2.0;
  cfg.sleep.max_s = 6.0;
  const auto pas = make_policy(cfg);

  PolicyNodeState ps;
  ps.sleep_interval = 1.0;
  EXPECT_EQ(pas->on_wake(ps), WakeAction::kQueryPeers);
  EXPECT_DOUBLE_EQ(pas->next_sleep_interval(ps, 100.0, sim::kNever), 3.0);
  ps.sleep_interval = 5.0;
  EXPECT_DOUBLE_EQ(pas->next_sleep_interval(ps, 100.0, sim::kNever), 6.0);

  EXPECT_FALSE(pas->on_evaluate(ps, 100.0, sim::kNever));
  EXPECT_FALSE(pas->on_evaluate(ps, 100.0, 120.1));
  EXPECT_TRUE(pas->on_evaluate(ps, 100.0, 120.0));  // exactly at threshold
  EXPECT_TRUE(pas->on_evaluate(ps, 100.0, 95.0));   // overdue but held
}

// --- DutyCycle --------------------------------------------------------------

TEST(DutyCycle, FixedPeriodNoEvaluationNoAlerts) {
  ProtocolConfig cfg;
  cfg.policy = Policy::kDutyCycle;
  cfg.duty_cycle.period_s = 3.5;
  const auto policy = make_policy(cfg);

  EXPECT_TRUE(policy->sleeps());
  EXPECT_FALSE(policy->covered_nodes_estimate());
  EXPECT_FALSE(policy->wants_alert_participation());
  EXPECT_DOUBLE_EQ(policy->initial_interval(), 3.5);
  EXPECT_DOUBLE_EQ(policy->max_sleep_s(), 3.5);

  PolicyNodeState ps;
  ps.sleep_interval = 3.5;
  EXPECT_EQ(policy->on_wake(ps), WakeAction::kSleepAgain);
  // The period never ramps, whatever the model claims.
  EXPECT_DOUBLE_EQ(policy->next_sleep_interval(ps, 10.0, sim::kNever), 3.5);
  EXPECT_DOUBLE_EQ(policy->next_sleep_interval(ps, 10.0, 11.0), 3.5);
  // An imminent predicted arrival still never alerts a duty cycler.
  EXPECT_FALSE(policy->on_evaluate(ps, 10.0, 10.5));
}

// --- ThresholdHold ----------------------------------------------------------

TEST(ThresholdHold, ListensWithoutQuerying) {
  ProtocolConfig cfg;
  cfg.policy = Policy::kThresholdHold;
  const auto policy = make_policy(cfg);
  PolicyNodeState ps;
  EXPECT_EQ(policy->on_wake(ps), WakeAction::kListenOnly);
  EXPECT_FALSE(policy->wants_alert_participation());
  EXPECT_TRUE(policy->covered_nodes_estimate());
  // Model quality: vector projection, covered peers only.
  EXPECT_TRUE(policy->prediction_policy(NodeState::kSafe).cosine_projection);
  EXPECT_FALSE(policy->prediction_policy(NodeState::kSafe).use_alert_peers);
}

TEST(ThresholdHold, HoldWindowGatesWakefulness) {
  ProtocolConfig cfg;
  cfg.policy = Policy::kThresholdHold;
  cfg.threshold_hold.hold_window_s = 15.0;
  cfg.alert_threshold_s = 99.0;  // must be ignored: the hold window rules
  const auto policy = make_policy(cfg);

  PolicyNodeState ps;
  EXPECT_FALSE(policy->on_evaluate(ps, 100.0, sim::kNever));
  EXPECT_TRUE(policy->on_evaluate(ps, 100.0, 115.0));   // inside the window
  EXPECT_FALSE(policy->on_evaluate(ps, 100.0, 115.1));  // beyond it
}

TEST(ThresholdHold, SleepsUntilTheWindowOpens) {
  ProtocolConfig cfg;
  cfg.policy = Policy::kThresholdHold;
  cfg.threshold_hold.hold_window_s = 10.0;
  cfg.sleep.initial_s = 1.0;
  cfg.sleep.increment_s = 2.0;
  cfg.sleep.max_s = 20.0;
  const auto policy = make_policy(cfg);

  PolicyNodeState ps;
  ps.sleep_interval = 1.0;
  // No model: fall back to the schedule ramp.
  EXPECT_DOUBLE_EQ(policy->next_sleep_interval(ps, 100.0, sim::kNever), 3.0);
  // Arrival predicted at t=125, window 10 s → sleep 15 s, not the ramp.
  EXPECT_DOUBLE_EQ(policy->next_sleep_interval(ps, 100.0, 125.0), 15.0);
  // Distant prediction clamps at the schedule maximum…
  EXPECT_DOUBLE_EQ(policy->next_sleep_interval(ps, 100.0, 1000.0), 20.0);
  // …and a prediction at the window's edge clamps at the initial interval.
  EXPECT_DOUBLE_EQ(policy->next_sleep_interval(ps, 100.0, 110.2), 1.0);
}

// --- to_string hardening ----------------------------------------------------

#ifndef NDEBUG
TEST(PolicyToStringDeathTest, ValueOutsideTheEnumAssertsInDebug) {
  EXPECT_DEATH((void)to_string(static_cast<Policy>(250)),
               "value outside the enum");
}
#else
TEST(PolicyToString, ValueOutsideTheEnumFallsBackInRelease) {
  EXPECT_EQ(to_string(static_cast<Policy>(250)), "?");
}
#endif

}  // namespace
}  // namespace pas::core

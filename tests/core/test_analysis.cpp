#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "world/paper_setup.hpp"
#include "world/sweep.hpp"

namespace pas::core {
namespace {

TEST(ExpectedDelay, ClosedForm) {
  // L = 10, w = 0: delay = 5. With w > 0 it shrinks.
  EXPECT_DOUBLE_EQ(expected_delay_s(10.0, 0.0), 5.0);
  EXPECT_NEAR(expected_delay_s(10.0, 0.06), (10.0 / 10.06) * 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(expected_delay_s(0.0, 1.0), 0.0);
  EXPECT_THROW((void)expected_delay_s(-1.0, 0.0), std::invalid_argument);
}

TEST(DutyCyclePower, DominatedBySleepAtLongIntervals) {
  constexpr auto telos = energy::PowerProfile::telos();
  const double p_long = duty_cycle_power_w(telos, 60.0, 0.06, 96);
  const double p_short = duty_cycle_power_w(telos, 1.0, 0.06, 96);
  EXPECT_LT(p_long, p_short);
  // Long-interval limit approaches the sleep floor.
  EXPECT_LT(p_long, 10.0 * telos.sleep_w + 0.2e-3);
  EXPECT_GT(p_long, telos.sleep_w);
}

TEST(DutyCyclePower, ShortIntervalApproachesActiveShare) {
  constexpr auto telos = energy::PowerProfile::telos();
  // w = L: about half the time active.
  const double p = duty_cycle_power_w(telos, 0.06, 0.06, 0);
  EXPECT_GT(p, 0.4 * telos.total_active_w());
}

TEST(Lifetime, Arithmetic) {
  EXPECT_DOUBLE_EQ(lifetime_s(100.0, 1.0), 100.0);
  EXPECT_TRUE(std::isinf(lifetime_s(10.0, 0.0)));
  EXPECT_THROW((void)lifetime_s(-1.0, 1.0), std::invalid_argument);
}

TEST(IntervalForDelay, InvertsExpectedDelay) {
  for (const double w : {0.0, 0.06, 0.5}) {
    for (const double d : {0.5, 2.0, 10.0}) {
      const double interval = interval_for_delay(d, w);
      EXPECT_NEAR(expected_delay_s(interval, w), d, 1e-9)
          << "d=" << d << " w=" << w;
    }
  }
  EXPECT_DOUBLE_EQ(interval_for_delay(0.0, 0.06), 0.0);
}

TEST(IntervalAt, WalksTheLinearRamp) {
  node::SleepSchedule s{.kind = node::RampKind::kLinear,
                        .initial_s = 1.0,
                        .increment_s = 1.0,
                        .max_s = 5.0};
  // Cycles: [0,1) interval 1, [1,3) interval 2, [3,6) interval 3, ...
  EXPECT_DOUBLE_EQ(interval_at(s, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(interval_at(s, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(interval_at(s, 5.0), 3.0);
  EXPECT_DOUBLE_EQ(interval_at(s, 1000.0), 5.0);  // saturated
}

TEST(IntervalAt, FixedRampConstant) {
  node::SleepSchedule s;
  s.kind = node::RampKind::kFixed;
  s.initial_s = 2.0;
  EXPECT_DOUBLE_EQ(interval_at(s, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(interval_at(s, 500.0), 2.0);
}

// Validation against the simulator: with alerting disabled (T_alert = 0)
// and a quickly saturating ramp, the measured average delay approaches the
// closed form for the saturated interval.
TEST(AnalysisValidation, NoAlertSimMatchesClosedForm) {
  world::PaperSetupOverrides o;
  o.policy = core::Policy::kPas;
  o.alert_threshold_s = 0.0;  // alerting off
  o.max_sleep_s = 4.0;        // ramp saturates after ~4 wakes
  world::ScenarioConfig cfg = world::paper_scenario(o);

  const auto agg = world::run_replicated(cfg, 20);
  const double predicted = expected_delay_s(4.0, cfg.protocol.response_wait_s);
  // Arrivals early in the run see a shorter (ramping) interval, so the
  // simulated mean sits at or slightly below the saturated-interval bound.
  EXPECT_GT(agg.delay_s.mean, 0.5 * predicted);
  EXPECT_LT(agg.delay_s.mean, 1.25 * predicted);
}

}  // namespace
}  // namespace pas::core

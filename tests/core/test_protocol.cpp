#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/config.hpp"
#include "stimulus/radial_front.hpp"

namespace pas::core {
namespace {

// A hand-built five-node line with an isotropic front moving along it:
//
//   source(0,0)   n0(2,0)  n1(8,0)  n2(14,0)  n3(20,0)  n4(26,0)
//
// front speed 0.5 m/s, released at t=5 → arrivals at 9, 21, 33, 45, 57 s.
// Spacing 6 m < 10 m radio range, so the line is a connected chain.
struct ProtocolWorld {
  explicit ProtocolWorld(ProtocolConfig config, sim::Duration horizon = 120.0) {
    stimulus::RadialFrontConfig scfg;
    scfg.source = {0.0, 0.0};
    scfg.base_speed = 0.5;
    scfg.start_time = 5.0;
    model = std::make_unique<stimulus::RadialFrontModel>(scfg);

    positions = {{2.0, 0.0}, {8.0, 0.0}, {14.0, 0.0}, {20.0, 0.0}, {26.0, 0.0}};
    arrivals = stimulus::ArrivalMap(*model, positions, horizon);

    network = std::make_unique<net::Network>(
        simulator, positions, net::RadioConfig{},
        std::make_shared<net::PerfectChannel>(), seeds);

    nodes.resize(positions.size());
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      nodes[i].id = i;
      nodes[i].position = positions[i];
      nodes[i].meter = energy::EnergyMeter(energy::PowerProfile::telos(), 0.0,
                                           energy::PowerMode::kActive);
      nodes[i].arrival = arrivals.at(i);
    }
    network->set_tx_hook([this](std::uint32_t id, std::size_t bits) {
      nodes[id].meter.add_tx(bits);
    });

    protocol = std::make_unique<Protocol>(simulator, *network, nodes, *model,
                                          arrivals, config, seeds, nullptr,
                                          &trace);
  }

  sim::Simulator simulator;
  sim::SeedSequence seeds{7};
  std::unique_ptr<stimulus::RadialFrontModel> model;
  std::vector<geom::Vec2> positions;
  stimulus::ArrivalMap arrivals;
  std::unique_ptr<net::Network> network;
  std::vector<node::SensorNode> nodes;
  sim::TraceLog trace;
  std::unique_ptr<Protocol> protocol;
};

TEST(Protocol, ValidatesSizes) {
  ProtocolWorld w(ProtocolConfig::pas());
  std::vector<node::SensorNode> wrong(3);
  EXPECT_THROW(Protocol(w.simulator, *w.network, wrong, *w.model, w.arrivals,
                        ProtocolConfig::pas(), w.seeds),
               std::invalid_argument);
}

TEST(Protocol, StartTwiceThrows) {
  ProtocolWorld w(ProtocolConfig::pas());
  w.protocol->start();
  EXPECT_THROW(w.protocol->start(), std::logic_error);
}

TEST(Protocol, AllNodesStartSafe) {
  ProtocolWorld w(ProtocolConfig::pas());
  w.protocol->start();
  EXPECT_EQ(w.protocol->count_in_state(NodeState::kSafe), 5U);
}

TEST(Protocol, NeverSleepDetectsInstantly) {
  ProtocolWorld w(ProtocolConfig::never_sleep());
  w.protocol->start();
  w.simulator.run_until(120.0);
  for (const auto& n : w.nodes) {
    ASSERT_TRUE(n.has_detected());
    EXPECT_NEAR(n.detection_delay(), 0.0, 1e-9);
  }
  EXPECT_EQ(w.protocol->count_in_state(NodeState::kCovered), 5U);
  // NS sends no messages at all.
  EXPECT_EQ(w.network->stats().broadcasts, 0U);
}

TEST(Protocol, PasEventuallyDetectsEverywhere) {
  ProtocolWorld w(ProtocolConfig::pas());
  w.protocol->start();
  w.simulator.run_until(120.0);
  for (const auto& n : w.nodes) {
    ASSERT_TRUE(n.has_detected());
    EXPECT_GE(n.detection_delay(), 0.0);
    EXPECT_LE(n.detection_delay(),
              w.protocol->config().sleep.max_s + 1e-9);
  }
}

TEST(Protocol, CoveredNodesStayCoveredUnderGrowingFront) {
  ProtocolWorld w(ProtocolConfig::pas());
  w.protocol->start();
  w.simulator.run_until(120.0);
  EXPECT_EQ(w.protocol->count_in_state(NodeState::kCovered), 5U);
  EXPECT_EQ(w.protocol->stats().covered_timeouts, 0U);
}

TEST(Protocol, SleepingNodesMissArrivalActiveNodesDont) {
  // Huge max sleep and no alerting (threshold 0 disables the alert belt at
  // distance): distant nodes must show positive delay.
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.alert_threshold_s = 0.0;
  cfg.sleep.max_s = 30.0;
  ProtocolWorld w(cfg);
  w.protocol->start();
  w.simulator.run_until(120.0);
  double total_delay = 0.0;
  for (const auto& n : w.nodes) {
    ASSERT_TRUE(n.has_detected());
    total_delay += n.detection_delay();
  }
  EXPECT_GT(total_delay, 0.5);
}

TEST(Protocol, AlertBeltFormsAheadOfFront) {
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.alert_threshold_s = 25.0;
  ProtocolWorld w(cfg);
  w.protocol->start();
  // At t=25 the front is at r=10: n0 covered (arrival 9), n1 close
  // (arrival 33 − 25 = 8s away < 25 threshold) should be alert or covered.
  w.simulator.run_until(30.0);
  EXPECT_EQ(w.protocol->state_of(0), NodeState::kCovered);
  EXPECT_NE(w.protocol->state_of(1), NodeState::kSafe);
  EXPECT_GT(w.protocol->stats().alert_entries, 0U);
}

TEST(Protocol, PasAlertReducesDelayVersusNoAlert) {
  ProtocolConfig with_alert = ProtocolConfig::pas();
  with_alert.alert_threshold_s = 25.0;
  with_alert.sleep.max_s = 20.0;
  ProtocolConfig no_alert = with_alert;
  no_alert.alert_threshold_s = 0.0;

  double delay_with = 0.0, delay_without = 0.0;
  {
    ProtocolWorld w(with_alert);
    w.protocol->start();
    w.simulator.run_until(120.0);
    for (const auto& n : w.nodes) delay_with += n.detection_delay();
  }
  {
    ProtocolWorld w(no_alert);
    w.protocol->start();
    w.simulator.run_until(120.0);
    for (const auto& n : w.nodes) delay_without += n.detection_delay();
  }
  EXPECT_LT(delay_with, delay_without);
}

TEST(Protocol, VelocityEstimatePropagates) {
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.alert_threshold_s = 30.0;
  ProtocolWorld w(cfg);
  w.protocol->start();
  w.simulator.run_until(60.0);  // front passed n1 (33) and n2 (45)
  // Nodes covered after the first have had covered peers to estimate from.
  EXPECT_TRUE(w.protocol->velocity_valid_of(2));
  const geom::Vec2 v = w.protocol->velocity_of(2);
  // True front speed is 0.5 m/s along +x; the estimate is protocol-level so
  // allow generous tolerance, but direction must be right.
  EXPECT_GT(v.x, 0.1);
  EXPECT_LT(v.norm(), 2.0);
}

TEST(Protocol, MessagesFlowOnlyWhenSleepingPolicy) {
  ProtocolWorld w(ProtocolConfig::pas());
  w.protocol->start();
  w.simulator.run_until(120.0);
  EXPECT_GT(w.network->stats().broadcasts, 0U);
  EXPECT_GT(w.protocol->stats().requests_sent, 0U);
  EXPECT_GT(w.protocol->stats().responses_sent, 0U);
}

TEST(Protocol, SasAlertNodesDontPush) {
  ProtocolWorld w(ProtocolConfig::sas());
  w.protocol->start();
  w.simulator.run_until(120.0);
  EXPECT_EQ(w.protocol->stats().responses_pushed, 0U);
}

TEST(Protocol, FailedNodeNeverDetects) {
  // A failure window early in the run kills exactly one of the five nodes.
  node::FailureConfig kill;
  kill.fraction = 0.2;  // exactly 1 of 5
  kill.window_start_s = 1.0;
  kill.window_end_s = 2.0;
  const node::FailurePlan fplan(5, kill, sim::Pcg32(3, 3));
  ASSERT_EQ(fplan.failing_count(), 1U);

  sim::Simulator simulator;
  const sim::SeedSequence seeds(7);
  stimulus::RadialFrontConfig scfg;
  scfg.source = {0.0, 0.0};
  scfg.base_speed = 0.5;
  scfg.start_time = 5.0;
  const stimulus::RadialFrontModel model(scfg);
  const std::vector<geom::Vec2> positions{
      {2.0, 0.0}, {8.0, 0.0}, {14.0, 0.0}, {20.0, 0.0}, {26.0, 0.0}};
  const stimulus::ArrivalMap arrivals(model, positions, 120.0);
  net::Network network(simulator, positions, net::RadioConfig{},
                       std::make_shared<net::PerfectChannel>(), seeds);
  std::vector<node::SensorNode> nodes(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    nodes[i].id = i;
    nodes[i].position = positions[i];
    nodes[i].meter = energy::EnergyMeter(energy::PowerProfile::telos(), 0.0,
                                         energy::PowerMode::kActive);
    nodes[i].arrival = arrivals.at(i);
  }
  Protocol protocol(simulator, network, nodes, model, arrivals,
                    ProtocolConfig::pas(), seeds, &fplan);
  protocol.start();
  simulator.run_until(120.0);

  std::size_t failed = 0, failed_detections = 0;
  for (const auto& n : nodes) {
    if (n.failed) {
      ++failed;
      if (n.has_detected()) ++failed_detections;
    } else {
      EXPECT_TRUE(n.has_detected());
    }
  }
  EXPECT_EQ(failed, 1U);
  EXPECT_EQ(failed_detections, 0U);
  EXPECT_EQ(protocol.stats().failures, 1U);
}

TEST(Protocol, TraceRecordsLifecycle) {
  ProtocolConfig cfg = ProtocolConfig::pas();
  ProtocolWorld w(cfg);
  w.trace.enable();
  w.protocol->start();
  w.simulator.run_until(120.0);
  EXPECT_GT(w.trace.filter(sim::TraceCategory::kSleep).size(), 0U);
  EXPECT_GT(w.trace.filter(sim::TraceCategory::kDetection).size(), 0U);
  EXPECT_GT(w.trace.filter(sim::TraceCategory::kState).size(), 0U);
}

TEST(Protocol, EnergyAccountingSeparatesPolicies) {
  double ns_energy = 0.0, pas_energy = 0.0;
  {
    ProtocolWorld w(ProtocolConfig::never_sleep());
    w.protocol->start();
    w.simulator.run_until(120.0);
    for (auto& n : w.nodes) {
      n.meter.finalize(120.0);
      ns_energy += n.meter.total_j(120.0);
    }
  }
  {
    ProtocolWorld w(ProtocolConfig::pas());
    w.protocol->start();
    w.simulator.run_until(120.0);
    for (auto& n : w.nodes) {
      n.meter.finalize(120.0);
      pas_energy += n.meter.total_j(120.0);
    }
  }
  EXPECT_LT(pas_energy, ns_energy);
}

TEST(Protocol, SleepIntervalClampedByMaxSleep) {
  ProtocolConfig cfg = ProtocolConfig::pas();
  cfg.alert_threshold_s = 0.0;  // nobody alerts
  cfg.sleep.initial_s = 1.0;
  cfg.sleep.increment_s = 1.0;
  cfg.sleep.max_s = 4.0;
  ProtocolWorld w(cfg);
  w.trace.enable();
  w.protocol->start();
  w.simulator.run_until(60.0);
  // Sleep trace events carry the chosen interval; none may exceed max.
  std::size_t sleeps = 0;
  for (const auto& e : w.trace.filter(sim::TraceCategory::kSleep)) {
    if (e.kind == sim::TraceKind::kSleepFor) {
      ++sleeps;
      EXPECT_LE(e.x, 4.0 + 1e-9);
    }
  }
  EXPECT_GT(sleeps, 0u);
}

}  // namespace
}  // namespace pas::core

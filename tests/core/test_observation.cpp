#include "core/observation.hpp"

#include <gtest/gtest.h>

namespace pas::core {
namespace {

PeerObservation obs(std::uint32_t id, sim::Time received) {
  PeerObservation o;
  o.id = id;
  o.received_at = received;
  return o;
}

TEST(PeerTable, UpdateInsertsAndReplaces) {
  PeerTable t;
  t.update(obs(1, 1.0));
  EXPECT_EQ(t.size(), 1U);
  t.update(obs(1, 2.0));
  EXPECT_EQ(t.size(), 1U);
  ASSERT_TRUE(t.find(1).has_value());
  EXPECT_DOUBLE_EQ(t.find(1)->received_at, 2.0);
}

TEST(PeerTable, FindMissingReturnsNullopt) {
  PeerTable t;
  EXPECT_FALSE(t.find(7).has_value());
}

TEST(PeerTable, SnapshotOrderedById) {
  PeerTable t;
  t.update(obs(9, 1.0));
  t.update(obs(2, 1.0));
  t.update(obs(5, 1.0));
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 3U);
  EXPECT_EQ(snap[0].id, 2U);
  EXPECT_EQ(snap[1].id, 5U);
  EXPECT_EQ(snap[2].id, 9U);
}

TEST(PeerTable, ExpireDropsOldEntries) {
  PeerTable t;
  t.update(obs(1, 1.0));
  t.update(obs(2, 5.0));
  t.update(obs(3, 9.0));
  t.expire_older_than(5.0);
  EXPECT_EQ(t.size(), 2U);
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_TRUE(t.find(2).has_value());  // exactly-at-cutoff survives
  EXPECT_TRUE(t.find(3).has_value());
}

TEST(PeerTable, ClearEmpties) {
  PeerTable t;
  t.update(obs(1, 1.0));
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(StateCodec, RoundTrips) {
  EXPECT_EQ(decode_state(encode(NodeState::kSafe)), NodeState::kSafe);
  EXPECT_EQ(decode_state(encode(NodeState::kAlert)), NodeState::kAlert);
  EXPECT_EQ(decode_state(encode(NodeState::kCovered)), NodeState::kCovered);
}

TEST(StateCodec, GarbageDecodesToSafe) {
  EXPECT_EQ(decode_state(200), NodeState::kSafe);
}

TEST(StateNames, Distinct) {
  EXPECT_STREQ(to_string(NodeState::kSafe), "safe");
  EXPECT_STREQ(to_string(NodeState::kAlert), "alert");
  EXPECT_STREQ(to_string(NodeState::kCovered), "covered");
}

}  // namespace
}  // namespace pas::core

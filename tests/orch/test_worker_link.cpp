// Protocol parsing: strict acceptance of well-formed lines, rejection of
// malformed heartbeats/commands, and format↔parse round trips.
#include "orch/worker_link.hpp"

#include <gtest/gtest.h>

namespace pas::orch {
namespace {

TEST(WorkerProtocol, ParsesWellFormedWorkerLines) {
  const auto hello = parse_worker_line("hello 3 17");
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->kind, WorkerMsg::Kind::kHello);
  EXPECT_EQ(hello->worker, 3);
  EXPECT_EQ(hello->recovered, 17U);

  const auto hb = parse_worker_line("hb");
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->kind, WorkerMsg::Kind::kHeartbeat);

  const auto done = parse_worker_line("point_done 42");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->kind, WorkerMsg::Kind::kPointDone);
  EXPECT_EQ(done->point, 42U);

  const auto lease = parse_worker_line("lease_done 7");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->kind, WorkerMsg::Kind::kLeaseDone);
  EXPECT_EQ(lease->lease, 7U);

  const auto fail = parse_worker_line("fail cannot open out.csv: EACCES");
  ASSERT_TRUE(fail.has_value());
  EXPECT_EQ(fail->kind, WorkerMsg::Kind::kFail);
  EXPECT_EQ(fail->message, "cannot open out.csv: EACCES");

  // The fail message is free text — odd spacing must not demote a real
  // error report to a protocol violation.
  const auto spaced = parse_worker_line("fail two  spaces   here");
  ASSERT_TRUE(spaced.has_value());
  EXPECT_EQ(spaced->message, "two  spaces   here");
}

TEST(WorkerProtocol, RejectsMalformedWorkerLines) {
  // Malformed heartbeats: the driver treats any of these as a crashed
  // worker — guessing at a corrupt stream could mis-credit points.
  EXPECT_FALSE(parse_worker_line("hb 12").has_value());
  EXPECT_FALSE(parse_worker_line("hb  ").has_value());
  EXPECT_FALSE(parse_worker_line(" hb").has_value());
  EXPECT_FALSE(parse_worker_line("HB").has_value());

  EXPECT_FALSE(parse_worker_line("").has_value());
  EXPECT_FALSE(parse_worker_line("point_done").has_value());
  EXPECT_FALSE(parse_worker_line("point_done abc").has_value());
  EXPECT_FALSE(parse_worker_line("point_done -3").has_value());
  EXPECT_FALSE(parse_worker_line("point_done 1 2").has_value());
  EXPECT_FALSE(parse_worker_line("point_done 1.5").has_value());
  EXPECT_FALSE(parse_worker_line("lease_done").has_value());
  EXPECT_FALSE(parse_worker_line("hello 1").has_value());
  EXPECT_FALSE(parse_worker_line("hello -1 0").has_value());
  EXPECT_FALSE(parse_worker_line("hello x 0").has_value());
  EXPECT_FALSE(parse_worker_line("fail").has_value());  // needs a message
  EXPECT_FALSE(parse_worker_line("restart 1").has_value());
  EXPECT_FALSE(parse_worker_line("point_done 1\r").has_value());
}

TEST(WorkerProtocol, ParsesWellFormedDriverLines) {
  const auto lease = parse_driver_line("lease 9 0 5 12");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->kind, DriverCmd::Kind::kLease);
  EXPECT_EQ(lease->lease, 9U);
  EXPECT_EQ(lease->points, (std::vector<std::size_t>{0, 5, 12}));

  const auto quit = parse_driver_line("quit");
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(quit->kind, DriverCmd::Kind::kQuit);
}

TEST(WorkerProtocol, RejectsMalformedDriverLines) {
  EXPECT_FALSE(parse_driver_line("").has_value());
  EXPECT_FALSE(parse_driver_line("lease").has_value());
  EXPECT_FALSE(parse_driver_line("lease 9").has_value());  // empty lease
  EXPECT_FALSE(parse_driver_line("lease x 1").has_value());
  EXPECT_FALSE(parse_driver_line("lease 9 1 x").has_value());
  EXPECT_FALSE(parse_driver_line("quit 1").has_value());
  EXPECT_FALSE(parse_driver_line("lease 9  1").has_value());  // double space
}

TEST(WorkerProtocol, FormatAndParseRoundTrip) {
  const auto hello = parse_worker_line(format_hello(5, 12));
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->worker, 5);
  EXPECT_EQ(hello->recovered, 12U);

  EXPECT_TRUE(parse_worker_line(format_heartbeat()).has_value());

  const auto done = parse_worker_line(format_point_done(107));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->point, 107U);

  const auto lease =
      parse_driver_line(format_lease(3, {8, 9, 10}));
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->lease, 3U);
  EXPECT_EQ(lease->points, (std::vector<std::size_t>{8, 9, 10}));

  EXPECT_TRUE(parse_driver_line(format_quit()).has_value());

  // fail messages survive embedded newlines by flattening — the protocol
  // stays line-oriented whatever e.what() contains.
  const auto fail = parse_worker_line(format_fail("multi\nline\rerror"));
  ASSERT_TRUE(fail.has_value());
  EXPECT_EQ(fail->message, "multi line error");
}

}  // namespace
}  // namespace pas::orch

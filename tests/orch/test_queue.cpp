// Work-stealing queue: guided lease sizing, draining, and reassignment
// ordering.
#include "orch/queue.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace pas::orch {
namespace {

std::vector<std::size_t> iota(std::size_t n) {
  std::vector<std::size_t> v(n);
  std::iota(v.begin(), v.end(), 0U);
  return v;
}

TEST(WorkQueue, GuidedLeasesShrinkAsTheQueueDrains) {
  WorkQueue queue(iota(100));
  const auto first = queue.take(4);   // 100/(2*4) = 12
  EXPECT_EQ(first.size(), 12U);
  std::size_t last_size = first.size();
  std::size_t total = first.size();
  while (!queue.empty()) {
    const auto lease = queue.take(4);
    ASSERT_FALSE(lease.empty());
    EXPECT_LE(lease.size(), last_size);  // monotonically non-increasing
    last_size = lease.size();
    total += lease.size();
  }
  EXPECT_EQ(total, 100U);
  EXPECT_EQ(last_size, 1U);  // the tail is handed out point by point
}

TEST(WorkQueue, EveryPointIsLeasedExactlyOnce) {
  WorkQueue queue(iota(37));
  std::set<std::size_t> seen;
  while (!queue.empty()) {
    for (const auto p : queue.take(3)) {
      EXPECT_TRUE(seen.insert(p).second) << "point " << p << " leased twice";
    }
  }
  EXPECT_EQ(seen.size(), 37U);
  EXPECT_TRUE(queue.take(3).empty());  // drained queue yields empty leases
}

TEST(WorkQueue, MaxLeaseCapsTheFirstLease) {
  WorkQueue queue(iota(1000), /*max_lease=*/8);
  EXPECT_EQ(queue.take(1).size(), 8U);
}

TEST(WorkQueue, SingleWorkerStillGetsBoundedLeases) {
  // With one worker the guided size is remaining/2 — a crash must never
  // lose the whole campaign's worth of leased work.
  WorkQueue queue(iota(10), /*max_lease=*/64);
  EXPECT_EQ(queue.take(1).size(), 5U);
}

TEST(WorkQueue, PutBackReissuesRecoveredWorkFirst) {
  WorkQueue queue(iota(20), /*max_lease=*/4);
  const auto lease = queue.take(2);  // points 0..3
  ASSERT_EQ(lease.size(), 4U);
  queue.put_back({lease[2], lease[3]});  // worker died with 2 unfinished
  const auto next = queue.take(2);
  ASSERT_GE(next.size(), 2U);
  // Recovered points lead the queue, ahead of untouched work.
  EXPECT_EQ(next[0], lease[2]);
  EXPECT_EQ(next[1], lease[3]);
  EXPECT_EQ(queue.remaining(), 20U - 4U + 2U - next.size());
}

TEST(WorkQueue, RejectsDegenerateParameters) {
  EXPECT_THROW(WorkQueue({}, 0), std::invalid_argument);
  WorkQueue queue(iota(4));
  EXPECT_THROW((void)queue.take(0), std::invalid_argument);
}

}  // namespace
}  // namespace pas::orch

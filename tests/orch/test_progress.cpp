// Formatting of the --progress status lines (shared by drive and
// single-process mode). Pure string functions, tested exactly.
#include <gtest/gtest.h>

#include "orch/supervisor.hpp"

namespace pas::orch {
namespace {

TEST(ProgressLine, FormatsRateAndEta) {
  // 10 of 40 points done, 8 computed this invocation at 2 reps each over
  // 4 s => 4 reps/s; 30 points * 2 reps / 4 reps/s => ETA 15 s.
  EXPECT_EQ(progress_line(10, 40, 8, 2, 4.0),
            "progress: 10/40 points (25%) | 4.0 reps/s | ETA 15s");
}

TEST(ProgressLine, ZeroElapsedDoesNotDivide) {
  EXPECT_EQ(progress_line(0, 10, 0, 3, 0.0),
            "progress: 0/10 points (0%) | 0.0 reps/s | ETA 0s");
}

TEST(ProgressLine, CompleteCampaign) {
  EXPECT_EQ(progress_line(6, 6, 6, 2, 6.0),
            "progress: 6/6 points (100%) | 2.0 reps/s | ETA 0s");
}

TEST(WorkerStatusLine, LeasedWorker) {
  EXPECT_EQ(worker_status_line(3, true, 5, 12, 0.42),
            "  worker 3: 5 pts leased | 12 done | last line 0.4s ago");
}

TEST(WorkerStatusLine, IdleWorker) {
  EXPECT_EQ(worker_status_line(0, false, 0, 7, 61.0),
            "  worker 0: idle | 7 done | last line 61.0s ago");
}

}  // namespace
}  // namespace pas::orch

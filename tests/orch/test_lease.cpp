// Lease table invariants: duplicate-lease rejection, progress validation,
// revocation, and heartbeat-driven expiry.
#include "orch/lease.hpp"

#include <gtest/gtest.h>

namespace pas::orch {
namespace {

using namespace std::chrono_literals;

TEST(LeaseTable, IssueMarkDoneCompleteLifecycle) {
  LeaseTable table;
  const auto t0 = Clock::now();
  const auto id = table.issue(0, {4, 7, 9}, t0);
  EXPECT_EQ(table.active(), 1U);
  EXPECT_EQ(table.lease_of(0), id);
  EXPECT_FALSE(table.lease_of(1).has_value());

  table.mark_done(id, 7, t0);
  EXPECT_FALSE(table.is_complete(id));
  table.mark_done(id, 4, t0);
  table.mark_done(id, 9, t0);
  EXPECT_TRUE(table.is_complete(id));
  table.complete(id);
  EXPECT_EQ(table.active(), 0U);
}

TEST(LeaseTable, RejectsDuplicateLeases) {
  LeaseTable table;
  const auto t0 = Clock::now();
  (void)table.issue(0, {1, 2, 3}, t0);
  // A point already under lease must never be issued again — two workers
  // would both compute it and merge would reject the duplicate rows.
  EXPECT_THROW((void)table.issue(1, {3, 4}, t0), std::logic_error);
  // A duplicate within a single lease is equally malformed.
  EXPECT_THROW((void)table.issue(1, {5, 5}, t0), std::logic_error);
  // An empty lease is a scheduler bug.
  EXPECT_THROW((void)table.issue(1, {}, t0), std::logic_error);
  // Once a point completes, a new lease may carry it again (re-issue after
  // a duplicate-row discard is legal).
  const auto id = table.lease_of(0).value();
  table.mark_done(id, 3, t0);
  EXPECT_NO_THROW((void)table.issue(1, {3}, t0));
}

TEST(LeaseTable, RejectsForeignAndRepeatedProgress) {
  LeaseTable table;
  const auto t0 = Clock::now();
  const auto id = table.issue(0, {1, 2}, t0);
  EXPECT_THROW(table.mark_done(id, 99, t0), std::logic_error);  // not leased
  table.mark_done(id, 1, t0);
  EXPECT_THROW(table.mark_done(id, 1, t0), std::logic_error);  // repeated
  EXPECT_THROW(table.mark_done(id + 1, 2, t0), std::logic_error);  // unknown
  EXPECT_THROW(table.complete(id), std::logic_error);  // still pending: 2
  EXPECT_THROW(table.renew(id + 1, t0), std::logic_error);
  EXPECT_THROW((void)table.revoke(id + 1), std::logic_error);
}

TEST(LeaseTable, RevokeReturnsUnfinishedPointsInIssueOrder) {
  LeaseTable table;
  const auto t0 = Clock::now();
  const auto id = table.issue(2, {9, 3, 5, 1}, t0);
  table.mark_done(id, 5, t0);
  const auto unfinished = table.revoke(id);
  EXPECT_EQ(unfinished, (std::vector<std::size_t>{9, 3, 1}));
  EXPECT_EQ(table.active(), 0U);
  // Revoked points are leasable again (the reassignment path).
  EXPECT_NO_THROW((void)table.issue(3, unfinished, t0));
}

TEST(LeaseTable, ExpiryFollowsRenewals) {
  LeaseTable table;
  const auto t0 = Clock::now();
  const auto a = table.issue(0, {1}, t0);
  const auto b = table.issue(1, {2}, t0);
  // 10 s later, only the renewed lease is alive under a 5 s timeout.
  table.renew(b, t0 + 8s);
  const auto expired = table.expired(t0 + 10s, 5.0);
  EXPECT_EQ(expired, (std::vector<std::uint64_t>{a}));
  // point_done counts as liveness too.
  table.mark_done(a, 1, t0 + 9s);
  EXPECT_TRUE(table.expired(t0 + 10s, 5.0).empty());
  // Timeout 0 disables expiry entirely.
  EXPECT_TRUE(table.expired(t0 + 10s, 0.0).empty());
}

}  // namespace
}  // namespace pas::orch

// Supervised multi-process campaigns, end to end against the real pas-exp
// binary: byte-identity with a serial run, SIGKILL crash recovery,
// duplicate-row sanitization on resume, and SIGINT interruption.
//
// The tests fork/exec the pas-exp executable (the --worker child mode), so
// they need its path: the PAS_EXP_BIN environment variable if set, else
// the build-time PAS_EXP_BIN_PATH definition CMake injects. If neither
// resolves to an existing file the suite skips rather than fails.
#include "orch/supervisor.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "exp/runner.hpp"
#include "io/json.hpp"
#include "world/paper_setup.hpp"

namespace pas::orch {
namespace {

namespace fs = std::filesystem;

std::string exe_path() {
  if (const char* env = std::getenv("PAS_EXP_BIN")) return env;
#ifdef PAS_EXP_BIN_PATH
  return PAS_EXP_BIN_PATH;
#else
  return {};
#endif
}

exp::Manifest small_manifest() {
  exp::Manifest m;
  m.name = "orch-test";
  m.base = world::paper_scenario();
  m.base.duration_s = 60.0;  // shortened horizon keeps the suite quick
  m.replications = 2;
  m.seed_base = 3;
  m.axes = {
      exp::Axis{.kind = exp::AxisKind::kPolicy, .labels = {"NS", "SAS", "PAS"}},
      exp::Axis{.kind = exp::AxisKind::kMaxSleep, .numbers = {5.0, 15.0}},
  };
  return m;
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exe_ = exe_path();
    if (exe_.empty() || !fs::exists(exe_)) {
      GTEST_SKIP() << "pas-exp binary not found (set PAS_EXP_BIN)";
    }
    dir_ = fs::temp_directory_path() /
           ("pas_orch_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);

    manifest_ = small_manifest();
    manifest_path_ = path("manifest.json");
    std::ofstream(manifest_path_) << manifest_.to_json().dump(2) << '\n';

    // Serial single-process reference: the bytes every drive must match.
    exp::CampaignOptions serial;
    serial.jobs = 1;
    serial.out_csv = path("ref.csv");
    serial.per_run_csv = path("ref_runs.csv");
    exp::run_campaign(manifest_, serial);
  }
  void TearDown() override {
    ::unsetenv("PAS_ORCH_TEST_CRASH");
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  static std::string slurp(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  DriveOptions options(std::size_t workers, const char* out,
                       const char* per_run = nullptr) {
    DriveOptions o;
    o.exe_path = exe_;
    o.manifest_path = manifest_path_;
    o.out_csv = path(out);
    if (per_run != nullptr) o.per_run_csv = path(per_run);
    o.workers = workers;
    o.verbosity = DriveOptions::Verbosity::kQuiet;
    o.max_lease = 2;  // small leases exercise the work-stealing churn
    return o;
  }

  /// Asserts `out` matches the serial reference and all .w* parts are gone.
  void expect_merged_identical(const char* out,
                               const char* per_run = nullptr) {
    EXPECT_EQ(slurp(path(out)), slurp(path("ref.csv")));
    if (per_run != nullptr) {
      EXPECT_EQ(slurp(path(per_run)), slurp(path("ref_runs.csv")));
    }
    std::size_t parts = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().filename().string().find(".w") != std::string::npos) {
        ++parts;
      }
    }
    EXPECT_EQ(parts, 0U) << "part files should be deleted after the merge";
  }

  /// The "point" rows of a telemetry JSONL file (trailers are wall-clock
  /// and schedule-dependent, so identity checks compare only point rows).
  static std::vector<std::string> point_rows(const fs::path& p) {
    std::ifstream in(p);
    std::vector<std::string> rows;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const io::Json row = io::Json::parse(line);
      if (row.string_or("kind", "") == "point") rows.push_back(line);
    }
    return rows;
  }

  std::string exe_;
  fs::path dir_;
  exp::Manifest manifest_;
  std::string manifest_path_;
};

TEST_F(SupervisorTest, DriveIsByteIdenticalToSerial) {
  const auto report = drive(manifest_, options(3, "out.csv", "runs.csv"));
  EXPECT_EQ(report.total_points, 6U);
  EXPECT_EQ(report.computed, 6U);
  EXPECT_EQ(report.resumed, 0U);
  EXPECT_EQ(report.crashes, 0U);
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.merged_rows, 6U);
  expect_merged_identical("out.csv", "runs.csv");
}

// The acceptance-criteria scenario: a worker is SIGKILLed mid-campaign
// (after flushing + reporting its first point), its lease is reassigned,
// and the merged output is still byte-identical to an undisturbed run.
TEST_F(SupervisorTest, SigkilledWorkerLeaseIsReassigned) {
  ::setenv("PAS_ORCH_TEST_CRASH", "0:1", 1);
  const auto report = drive(manifest_, options(2, "out.csv", "runs.csv"));
  EXPECT_GE(report.crashes, 1U);
  EXPECT_GE(report.respawns, 1U);
  EXPECT_EQ(report.computed, 6U);
  EXPECT_EQ(report.merged_rows, 6U);
  expect_merged_identical("out.csv", "runs.csv");
}

// Crash-race aftermath: two part files both carry a row for the same point
// (a worker wrote its row, died unreported, and the point was reassigned).
// Resume must claim one copy, physically drop the other, and still merge
// to the exact serial bytes.
TEST_F(SupervisorTest, ResumeDropsDuplicateRowsAcrossParts) {
  const std::string w0 = part_path(path("out.csv"), 0);
  const std::string w1 = part_path(path("out.csv"), 1);
  exp::CampaignOptions fabricate;
  fabricate.jobs = 1;
  fabricate.owned_points = {0, 1, 2};
  fabricate.out_csv = w0;
  exp::run_campaign(manifest_, fabricate);
  fabricate.owned_points = {2, 4};  // point 2 duplicated across parts
  fabricate.out_csv = w1;
  exp::run_campaign(manifest_, fabricate);

  auto o = options(2, "out.csv");
  o.resume = true;
  const auto report = drive(manifest_, o);
  EXPECT_EQ(report.resumed, 4U);   // 0,1,2 from w0; 4 from w1 (2 dropped)
  EXPECT_EQ(report.computed, 2U);  // 3 and 5
  expect_merged_identical("out.csv");
}

// Resume also composes with an interrupted *single-process* run: rows
// already in --out seed the claim set and the drive computes only the rest.
TEST_F(SupervisorTest, ResumeClaimsRowsFromSingleProcessOut) {
  exp::CampaignOptions partial;
  partial.jobs = 1;
  partial.owned_points = {0, 1, 5};
  partial.out_csv = path("out.csv");
  exp::run_campaign(manifest_, partial);

  auto o = options(2, "out.csv");
  o.resume = true;
  const auto report = drive(manifest_, o);
  EXPECT_EQ(report.resumed, 3U);
  EXPECT_EQ(report.computed, 3U);
  expect_merged_identical("out.csv");
}

TEST_F(SupervisorTest, RefusesExistingOutputWithoutResume) {
  std::ofstream(path("out.csv")) << "stale\n";
  EXPECT_THROW((void)drive(manifest_, options(2, "out.csv")),
               std::runtime_error);
}

TEST_F(SupervisorTest, SigintLeavesResumableStateAndResumeCompletes) {
  // Fire SIGINT shortly after the drive starts; whether it lands before or
  // after completion, the follow-up resume must converge on the exact
  // serial bytes (the deterministic end state this test pins down).
  // Outside drive()'s handler window SIGINT must be ignored, or a
  // late-landing signal would kill the test binary instead.
  struct IgnoreSigint {
    struct sigaction old {};
    IgnoreSigint() {
      struct sigaction ign {};
      ign.sa_handler = SIG_IGN;
      sigemptyset(&ign.sa_mask);
      ::sigaction(SIGINT, &ign, &old);
    }
    ~IgnoreSigint() { ::sigaction(SIGINT, &old, nullptr); }
  } guard;
  std::thread interrupter([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ::kill(::getpid(), SIGINT);
  });
  const auto first = drive(manifest_, options(2, "out.csv", "runs.csv"));
  interrupter.join();
  if (first.interrupted) {
    auto o = options(3, "out.csv", "runs.csv");  // resume with different W
    o.resume = true;
    const auto second = drive(manifest_, o);
    EXPECT_FALSE(second.interrupted);
    EXPECT_EQ(second.resumed + second.computed, 6U);
  }
  expect_merged_identical("out.csv", "runs.csv");
}

// Drive-mode telemetry: workers write metrics part files, the driver merges
// them, and the merged point rows are byte-identical to a serial campaign's
// (only the trailer — wall-clock orchestrator instruments — may differ).
TEST_F(SupervisorTest, DriveMetricsMergeMatchesSerialPointRows) {
  exp::CampaignOptions serial;
  serial.jobs = 1;
  serial.out_csv = path("ref2.csv");
  serial.metrics_path = path("ref.jsonl");
  exp::run_campaign(manifest_, serial);

  auto o = options(3, "out.csv");
  o.metrics_path = path("metrics.jsonl");
  const auto report = drive(manifest_, o);
  EXPECT_EQ(report.computed, 6U);
  expect_merged_identical("out.csv");  // also: no .w* metrics parts left

  const auto serial_rows = point_rows(path("ref.jsonl"));
  const auto drive_rows = point_rows(path("metrics.jsonl"));
  ASSERT_EQ(serial_rows.size(), 6U);
  EXPECT_EQ(serial_rows, drive_rows);

  // The drive trailer is the orchestrator's registry snapshot.
  std::string last_line;
  {
    std::ifstream in(path("metrics.jsonl"));
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) last_line = line;
    }
  }
  const io::Json trailer = io::Json::parse(last_line);
  EXPECT_EQ(trailer.string_or("kind", ""), "registry");
  EXPECT_EQ(trailer.string_or("scope", ""), "orchestrator");
}

// A crashed worker's telemetry part survives (rows are flushed before
// point_done, like the CSV), the reassigned points fill the gaps, and the
// crash dumps the protocol flight recorder next to the output.
TEST_F(SupervisorTest, CrashedDriveKeepsTelemetryAndDumpsFlightRecorder) {
  ::setenv("PAS_ORCH_TEST_CRASH", "0:1", 1);
  auto o = options(2, "out.csv");
  o.metrics_path = path("metrics.jsonl");
  const auto report = drive(manifest_, o);
  EXPECT_GE(report.crashes, 1U);
  expect_merged_identical("out.csv");

  EXPECT_EQ(point_rows(path("metrics.jsonl")).size(), 6U);

  const std::string flightrec = path("out.csv.flightrec");
  ASSERT_TRUE(fs::exists(flightrec)) << "crash should dump flight recorder";
  const std::string dump = slurp(flightrec);
  EXPECT_NE(dump.find("flight recorder:"), std::string::npos) << dump;
  EXPECT_NE(dump.find("hello"), std::string::npos) << dump;
}

// A respawn budget of zero turns the first crash into a hard failure when
// no other worker can pick up the queue — instead of a silent infinite
// crash-respawn loop.
TEST_F(SupervisorTest, ExhaustedRespawnBudgetAborts) {
  ::setenv("PAS_ORCH_TEST_CRASH", "0:1", 1);
  auto o = options(1, "out.csv");
  o.max_respawns = 0;
  EXPECT_THROW((void)drive(manifest_, o), std::runtime_error);
}

}  // namespace
}  // namespace pas::orch

// Manifest JSON round-trip and validation.
#include "exp/manifest.hpp"

#include <gtest/gtest.h>

#include "world/config_json.hpp"

namespace pas::exp {
namespace {

Manifest sample_manifest() {
  Manifest m;
  m.name = "roundtrip";
  m.description = "sample";
  m.replications = 7;
  m.seed_base = 99;
  m.base.seed = 5;
  m.base.duration_s = 120.0;
  m.base.deployment.count = 24;
  m.base.radio.range_m = 12.0;
  m.base.protocol.policy = core::Policy::kSas;
  m.base.protocol.alert_threshold_s = 15.0;
  m.base.protocol.sleep.max_s = 25.0;
  m.base.stimulus = world::StimulusKind::kPlume;
  m.base.plume.mass = 1234.0;
  m.base.channel = world::ChannelKind::kBernoulli;
  m.base.channel_loss = 0.1;
  m.base.failures.fraction = 0.2;
  m.base.failures.window_end_s = 100.0;
  m.axes = {
      Axis{.kind = AxisKind::kPolicy, .labels = {"NS", "PAS"}},
      Axis{.kind = AxisKind::kMaxSleep, .numbers = {5.0, 10.0, 20.0}},
  };
  return m;
}

TEST(Manifest, JsonRoundTrip) {
  const Manifest m = sample_manifest();
  const Manifest r = Manifest::from_json(
      io::Json::parse(m.to_json().dump(2)));

  EXPECT_EQ(r.name, m.name);
  EXPECT_EQ(r.description, m.description);
  EXPECT_EQ(r.replications, m.replications);
  EXPECT_EQ(r.seed_base, m.seed_base);

  EXPECT_EQ(r.base.seed, m.base.seed);
  EXPECT_DOUBLE_EQ(r.base.duration_s, m.base.duration_s);
  EXPECT_EQ(r.base.deployment.count, m.base.deployment.count);
  EXPECT_DOUBLE_EQ(r.base.radio.range_m, m.base.radio.range_m);
  EXPECT_EQ(r.base.protocol.policy, m.base.protocol.policy);
  EXPECT_DOUBLE_EQ(r.base.protocol.alert_threshold_s,
                   m.base.protocol.alert_threshold_s);
  EXPECT_DOUBLE_EQ(r.base.protocol.sleep.max_s, m.base.protocol.sleep.max_s);
  EXPECT_EQ(r.base.stimulus, m.base.stimulus);
  EXPECT_DOUBLE_EQ(r.base.plume.mass, m.base.plume.mass);
  EXPECT_EQ(r.base.channel, m.base.channel);
  EXPECT_DOUBLE_EQ(r.base.channel_loss, m.base.channel_loss);
  EXPECT_DOUBLE_EQ(r.base.failures.fraction, m.base.failures.fraction);
  EXPECT_DOUBLE_EQ(r.base.failures.window_end_s, m.base.failures.window_end_s);

  ASSERT_EQ(r.axes.size(), 2U);
  EXPECT_EQ(r.axes[0].kind, AxisKind::kPolicy);
  EXPECT_EQ(r.axes[0].labels, (std::vector<std::string>{"NS", "PAS"}));
  EXPECT_EQ(r.axes[1].kind, AxisKind::kMaxSleep);
  EXPECT_EQ(r.axes[1].numbers, (std::vector<double>{5.0, 10.0, 20.0}));

  // Second round trip is byte-stable.
  EXPECT_EQ(r.to_json().dump(), m.to_json().dump());
}

TEST(Manifest, PointAndRunCounts) {
  const Manifest m = sample_manifest();
  EXPECT_EQ(m.point_count(), 6U);
  EXPECT_EQ(m.run_count(), 42U);
  Manifest axis_free;
  EXPECT_EQ(axis_free.point_count(), 1U);
}

TEST(Manifest, UnknownKeysRejected) {
  EXPECT_THROW(Manifest::from_json(io::Json::parse(R"({"nam": "typo"})")),
               std::runtime_error);
  EXPECT_THROW(Manifest::from_json(io::Json::parse(
                   R"({"base": {"duration": 10}})")),
               std::runtime_error);
  EXPECT_THROW(Manifest::from_json(io::Json::parse(
                   R"({"axes": [{"axis": "warp_speed", "values": [1]}]})")),
               std::runtime_error);
}

TEST(Manifest, ValidationRejectsBadShapes) {
  Manifest m = sample_manifest();
  m.replications = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = sample_manifest();
  m.axes.push_back(Axis{.kind = AxisKind::kPolicy, .labels = {"PAS"}});
  EXPECT_THROW(m.validate(), std::invalid_argument);  // duplicate axis

  m = sample_manifest();
  m.axes[1].numbers.clear();
  EXPECT_THROW(m.validate(), std::invalid_argument);  // empty axis
}

TEST(Manifest, NegativeCountsRejected) {
  EXPECT_THROW(Manifest::from_json(io::Json::parse(R"({"replications": -1})")),
               std::runtime_error);
  EXPECT_THROW(Manifest::from_json(io::Json::parse(R"({"seed_base": -2})")),
               std::runtime_error);
  EXPECT_THROW(Manifest::from_json(io::Json::parse(
                   R"({"axes": [{"axis": "node_count", "values": [-5]}]})")),
               std::invalid_argument);
  EXPECT_THROW(Manifest::from_json(io::Json::parse(
                   R"({"base": {"deployment": {"count": -3}}})")),
               std::runtime_error);
}

TEST(Manifest, BadAxisValueFailsAtLoadTime) {
  EXPECT_THROW(Manifest::from_json(io::Json::parse(
                   R"({"axes": [{"axis": "policy", "values": ["WAT"]}]})")),
               std::runtime_error);
  // Numeric axis with string values (and vice versa) is a type error.
  EXPECT_THROW(Manifest::from_json(io::Json::parse(
                   R"({"axes": [{"axis": "max_sleep_s", "values": ["5"]}]})")),
               std::runtime_error);
}

TEST(Manifest, UnknownPolicyNameRejectedAtLoadTime) {
  // The registry error must reach the manifest author with the valid
  // spellings, not surface mid-campaign.
  try {
    (void)Manifest::from_json(io::Json::parse(
        R"({"axes": [{"axis": "policy", "values": ["PAS", "BMAC"]}]})"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("BMAC"), std::string::npos);
    EXPECT_NE(what.find("DutyCycle"), std::string::npos);
  }
}

TEST(Manifest, LoadParsesExampleCampaign) {
  // The shipped example must stay loadable; it is the CLI's documented entry
  // point. Locate it relative to the source tree via __FILE__.
  const std::string here = __FILE__;
  const std::string root = here.substr(0, here.find("tests/exp/"));
  const Manifest m = Manifest::load(root + "examples/campaign.json");
  EXPECT_EQ(m.name, "paper-grid");
  EXPECT_GE(m.point_count(), 100U);
}

TEST(Manifest, LoadParsesPolicyComparisonExample) {
  const std::string here = __FILE__;
  const std::string root = here.substr(0, here.find("tests/exp/"));
  const Manifest m = Manifest::load(root + "examples/policy_comparison.json");
  EXPECT_EQ(m.name, "policy-comparison");
  ASSERT_FALSE(m.axes.empty());
  EXPECT_EQ(m.axes[0].kind, AxisKind::kPolicy);
  EXPECT_EQ(m.axes[0].labels,
            (std::vector<std::string>{"NS", "SAS", "PAS", "DutyCycle",
                                      "ThresholdHold"}));
  EXPECT_DOUBLE_EQ(m.base.protocol.duty_cycle.period_s, 5.0);
  EXPECT_DOUBLE_EQ(m.base.protocol.threshold_hold.hold_window_s, 20.0);
}

}  // namespace
}  // namespace pas::exp

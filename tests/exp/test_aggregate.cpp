// Aggregator: incremental CSV/JSON output, resume recovery, finalize.
#include "exp/aggregate.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/row_store.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "metrics/stats.hpp"

namespace pas::exp {
namespace {

namespace fs = std::filesystem;

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pas_agg_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    csv_ = (dir_ / "out.csv").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  static world::ReplicatedMetrics fake_metrics(double delay) {
    world::ReplicatedMetrics m;
    m.delay_s = {.n = 2, .mean = delay, .stddev = 0.0, .min = delay,
                 .max = delay, .ci95_half = 0.0};
    m.energy_j = {.n = 2, .mean = 4.0, .stddev = 0.0, .min = 4.0, .max = 4.0,
                  .ci95_half = 0.0};
    m.active_fraction = {.n = 2, .mean = 0.5, .stddev = 0.0, .min = 0.5,
                         .max = 0.5, .ci95_half = 0.0};
    m.mean_missed = 1.0;
    m.mean_broadcasts = 10.0;
    m.runs.resize(2);
    return m;
  }

  static std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  fs::path dir_;
  std::string csv_;
};

TEST_F(AggregateTest, WritesHeaderAndRowsIncrementally) {
  Aggregator agg(csv_, "", {"policy"}, 3);
  EXPECT_EQ(agg.load_existing(), 0U);
  agg.record(1, 111, {"SAS"}, fake_metrics(2.0));
  // One row is on disk (flushed) before the campaign completes.
  auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_EQ(lines[0].substr(0, 11), "point,seed,");
  EXPECT_EQ(lines[1].substr(0, 6), "1,111,");
  EXPECT_FALSE(agg.is_done(0));
  EXPECT_TRUE(agg.is_done(1));
  EXPECT_EQ(agg.pending(), (std::vector<std::size_t>{0, 2}));
}

TEST_F(AggregateTest, ResumeSkipsCompletedPoints) {
  {
    Aggregator agg(csv_, "", {"policy"}, 4);
    agg.load_existing();
    agg.record(0, 100, {"NS"}, fake_metrics(0.0));
    agg.record(2, 102, {"PAS"}, fake_metrics(1.5));
  }  // "killed" campaign: rows 0 and 2 on disk

  Aggregator resumed(csv_, "", {"policy"}, 4);
  EXPECT_EQ(resumed.load_existing(), 2U);
  EXPECT_TRUE(resumed.is_done(0));
  EXPECT_FALSE(resumed.is_done(1));
  EXPECT_TRUE(resumed.is_done(2));
  EXPECT_EQ(resumed.pending(), (std::vector<std::size_t>{1, 3}));

  resumed.record(1, 101, {"SAS"}, fake_metrics(2.0));
  resumed.record(3, 103, {"PAS"}, fake_metrics(3.0));
  resumed.finalize();

  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 5U);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(lines[p + 1].substr(0, 2), std::to_string(p) + ",");
  }
}

TEST_F(AggregateTest, ResumeDropsTruncatedTrailingRow) {
  {
    Aggregator agg(csv_, "", {"policy"}, 3);
    agg.load_existing();
    agg.record(0, 100, {"NS"}, fake_metrics(0.0));
  }
  {
    // Simulate a kill mid-write: append half a row.
    std::ofstream out(csv_, std::ios::app);
    out << "1,101,SAS,2,0.5";  // far fewer cells than the header
  }
  Aggregator resumed(csv_, "", {"policy"}, 3);
  EXPECT_EQ(resumed.load_existing(), 1U);
  EXPECT_FALSE(resumed.is_done(1));
  // The compacted file no longer carries the damaged point-1 line.
  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 2U);  // header + intact row 0
  EXPECT_EQ(lines[1].substr(0, 2), "0,");
}

TEST_F(AggregateTest, HeaderMismatchThrows) {
  {
    std::ofstream out(csv_);
    out << "point,seed,wrong,columns\n";
  }
  Aggregator agg(csv_, "", {"policy"}, 3);
  EXPECT_THROW(agg.load_existing(), std::runtime_error);
}

TEST_F(AggregateTest, FinalizeRequiresCompleteness) {
  Aggregator agg(csv_, "", {}, 2);
  agg.load_existing();
  agg.record(0, 100, {}, fake_metrics(0.0));
  EXPECT_THROW(agg.finalize(), std::logic_error);
}

TEST_F(AggregateTest, JsonLinesMirrorRows) {
  const std::string jsonl = (dir_ / "out.jsonl").string();
  Aggregator agg(csv_, jsonl, {"policy"}, 1);
  agg.load_existing();
  agg.record(0, 100, {"PAS"}, fake_metrics(2.5));
  agg.finalize();
  const auto lines = read_lines(jsonl);
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_NE(lines[0].find("\"policy\":\"PAS\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"delay_mean_s\":2.5"), std::string::npos);
  // Rows must be valid JSON documents.
  EXPECT_NO_THROW((void)io::Json::parse(lines[0]));
}

TEST_F(AggregateTest, NonFiniteMetricsBecomeJsonNull) {
  const std::string jsonl = (dir_ / "out.jsonl").string();
  Aggregator agg(csv_, jsonl, {"policy"}, 1);
  agg.load_existing();
  auto m = fake_metrics(std::numeric_limits<double>::quiet_NaN());
  m.energy_j.mean = std::numeric_limits<double>::infinity();
  agg.record(0, 100, {"PAS"}, m);
  const auto lines = read_lines(jsonl);
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_NE(lines[0].find("\"delay_mean_s\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"energy_mean_j\":null"), std::string::npos);
  EXPECT_NO_THROW((void)io::Json::parse(lines[0]));  // still valid JSON
}

TEST_F(AggregateTest, ResumeRejectsRowsFromDifferentManifest) {
  {
    Aggregator agg(csv_, "", {"max_sleep_s"}, 2,
                   {{"100", "5"}, {"101", "10"}});
    agg.load_existing();
    agg.record(0, 100, {"5"}, fake_metrics(1.0));
  }
  // Same columns, but the campaign now expects different axis values for
  // point 0 (as if the manifest's sweep values changed).
  Aggregator changed(csv_, "", {"max_sleep_s"}, 2,
                     {{"100", "7"}, {"101", "10"}});
  EXPECT_THROW(changed.load_existing(), std::runtime_error);

  // A changed seed_base is caught the same way.
  Aggregator reseeded(csv_, "", {"max_sleep_s"}, 2,
                      {{"999", "5"}, {"998", "10"}});
  EXPECT_THROW(reseeded.load_existing(), std::runtime_error);

  // The matching manifest still resumes cleanly.
  Aggregator same(csv_, "", {"max_sleep_s"}, 2, {{"100", "5"}, {"101", "10"}});
  EXPECT_EQ(same.load_existing(), 1U);
}

TEST_F(AggregateTest, OwnedPointsRestrictPendingAndFinalize) {
  AggregatorOptions options;
  options.csv_path = csv_;
  options.axis_names = {"policy"};
  options.total_points = 4;
  options.owned_points = {0, 2};
  Aggregator agg(std::move(options));
  EXPECT_EQ(agg.owned_count(), 2U);
  agg.load_existing();
  EXPECT_EQ(agg.pending(), (std::vector<std::size_t>{0, 2}));
  // Foreign points are a scheduling bug, not data.
  EXPECT_THROW(agg.record(1, 101, {"SAS"}, fake_metrics(1.0)),
               std::logic_error);
  agg.record(0, 100, {"NS"}, fake_metrics(0.0));
  agg.record(2, 102, {"PAS"}, fake_metrics(2.0));
  // Complete for this shard even though points 1 and 3 have no rows.
  agg.finalize();
  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_EQ(lines[1].substr(0, 2), "0,");
  EXPECT_EQ(lines[2].substr(0, 2), "2,");
}

TEST_F(AggregateTest, PerRunRowsMirrorEveryReplication) {
  const std::string runs_csv = (dir_ / "runs.csv").string();
  AggregatorOptions options;
  options.csv_path = csv_;
  options.per_run_path = runs_csv;
  options.axis_names = {"policy"};
  options.total_points = 1;
  options.replications = 2;
  Aggregator agg(std::move(options));
  agg.load_existing();
  auto m = fake_metrics(2.0);
  m.runs[0].avg_delay_s = 1.5;
  m.runs[1].avg_delay_s = 2.5;
  agg.record(0, 100, {"PAS"}, m);
  agg.finalize();

  const auto lines = read_lines(runs_csv);
  ASSERT_EQ(lines.size(), 3U);  // header + one row per replication
  EXPECT_EQ(lines[0].substr(0, 15), "point,rep,seed,");
  // Replication r runs with seed 100 + r.
  EXPECT_EQ(lines[1].substr(0, 10), "0,0,100,PA");
  EXPECT_EQ(lines[2].substr(0, 10), "0,1,101,PA");
  EXPECT_NE(lines[1].find(",1.5,"), std::string::npos);
  EXPECT_NE(lines[2].find(",2.5,"), std::string::npos);
}

TEST_F(AggregateTest, ResumeDropsPointsWithTornPerRunGroups) {
  const std::string runs_csv = (dir_ / "runs.csv").string();
  const auto make_options = [&] {
    AggregatorOptions options;
    options.csv_path = csv_;
    options.per_run_path = runs_csv;
    options.axis_names = {"policy"};
    options.total_points = 2;
    options.replications = 2;
    return options;
  };
  {
    Aggregator agg(make_options());
    agg.load_existing();
    agg.record(0, 100, {"NS"}, fake_metrics(0.0));
    agg.record(1, 101, {"PAS"}, fake_metrics(1.0));
  }
  // Tear point 1's per-run group (as if killed mid-write): its summary row
  // must not count as done on resume.
  {
    const auto lines = read_lines(runs_csv);
    ASSERT_EQ(lines.size(), 5U);
    std::ofstream out(runs_csv, std::ios::trunc);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << '\n';
  }
  Aggregator resumed(make_options());
  EXPECT_EQ(resumed.load_existing(), 1U);
  EXPECT_TRUE(resumed.is_done(0));
  EXPECT_FALSE(resumed.is_done(1));
  // The compacted per-run file dropped the torn group entirely.
  EXPECT_EQ(read_lines(runs_csv).size(), 3U);
}

TEST_F(AggregateTest, MainCsvCarriesDelayPercentileColumns) {
  Aggregator agg(csv_, "", {"policy"}, 1);
  agg.load_existing();
  auto m = fake_metrics(2.0);
  m.runs[0].avg_delay_s = 1.0;
  m.runs[1].avg_delay_s = 3.0;
  agg.record(0, 100, {"PAS"}, m);
  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_NE(lines[0].find("delay_p50_s,delay_p95_s,delay_p99_s"),
            std::string::npos);
  // Interpolated over the per-run delays {1, 3}, rendered exactly as the
  // aggregator does (round-trip formatting).
  const auto pct = metrics::Percentiles::of({1.0, 3.0});
  const std::string want = "," + io::format_double(pct.p50) + "," +
                           io::format_double(pct.p95) + "," +
                           io::format_double(pct.p99) + ",";
  EXPECT_NE(lines[1].find(want), std::string::npos);
}

TEST_F(AggregateTest, InMemoryAggregationNeedsNoFiles) {
  Aggregator agg("", "", {"policy"}, 2);
  agg.load_existing();
  agg.record(0, 1, {"NS"}, fake_metrics(0.0));
  agg.record(1, 2, {"PAS"}, fake_metrics(1.0));
  agg.finalize();
  EXPECT_EQ(agg.done_count(), 2U);
  EXPECT_EQ(agg.summaries().at(1).delay_s.mean, 1.0);
  EXPECT_TRUE(fs::directory_iterator(dir_) == fs::directory_iterator());
}

// --- Store mode -------------------------------------------------------------

class StoreAggregateTest : public AggregateTest {
 protected:
  /// Deterministic per-(point, rep) metrics so the legacy and store paths
  /// see identical inputs — any byte difference is then a pipeline bug.
  static world::ReplicatedMetrics synth_metrics(std::size_t point,
                                                std::size_t reps) {
    world::ReplicatedMetrics m = fake_metrics(
        0.5 + 0.01 * static_cast<double>(point % 13));
    m.runs.resize(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      m.runs[r] = metrics::RunMetrics{};
      m.runs[r].avg_delay_s =
          0.25 + 0.003 * static_cast<double>((point * 7 + r * 3) % 29);
      m.runs[r].avg_energy_j =
          1.0 + 0.001 * static_cast<double>((point + r) % 17);
    }
    return m;
  }

  AggregatorOptions store_options(const fs::path& sub,
                                  std::size_t total_points,
                                  std::size_t reps,
                                  std::size_t spill_budget) {
    fs::create_directories(dir_ / sub);
    AggregatorOptions options;
    options.csv_path = (dir_ / sub / "out.csv").string();
    options.json_path = (dir_ / sub / "out.jsonl").string();
    options.per_run_path = (dir_ / sub / "runs.csv").string();
    options.axis_names = {"x"};
    options.total_points = total_points;
    options.replications = reps;
    options.store_path = RowStore::path_for(options.csv_path);
    options.spill_budget_bytes = spill_budget;
    return options;
  }
};

TEST_F(StoreAggregateTest, OracleMatchesLegacyByteForByte) {
  constexpr std::size_t kPoints = 37;
  constexpr std::size_t kReps = 3;
  auto legacy_options = store_options("legacy", kPoints, kReps, 0);
  legacy_options.store_path.clear();  // the in-memory oracle
  // A tiny spill budget forces many sorted runs and a genuine k-way merge
  // even on this small campaign.
  const auto store_opts = store_options("store", kPoints, kReps, 512);
  Aggregator legacy(std::move(legacy_options));
  Aggregator store{AggregatorOptions(store_opts)};
  legacy.load_existing();
  store.load_existing();
  // Record in a scrambled (but deterministic) completion order.
  for (std::size_t i = 0; i < kPoints; ++i) {
    const std::size_t p = (i * 17) % kPoints;
    const auto m = synth_metrics(p, kReps);
    legacy.record(p, 1000 + p, {std::to_string(p)}, m);
    store.record(p, 1000 + p, {std::to_string(p)}, m);
  }
  legacy.finalize();
  store.finalize();
  for (const char* name : {"out.csv", "out.jsonl", "runs.csv"}) {
    const auto a = read_lines((dir_ / "legacy" / name).string());
    const auto b = read_lines((dir_ / "store" / name).string());
    EXPECT_EQ(a, b) << name;
  }
  // finalize retires the store: the completed campaign looks legacy.
  EXPECT_FALSE(fs::exists(store_opts.store_path));
}

TEST_F(StoreAggregateTest, ResumeDropsTornBinaryTail) {
  const auto options = store_options("s", 2, 2, 0);
  {
    Aggregator agg{AggregatorOptions(options)};
    agg.load_existing();
    agg.record(0, 100, {"0"}, synth_metrics(0, 2));
    agg.record(1, 101, {"1"}, synth_metrics(1, 2));
    // No finalize: the campaign dies here, rows live only in the store.
  }
  EXPECT_FALSE(fs::exists(options.csv_path));
  ASSERT_TRUE(fs::exists(options.store_path));
  // Tear into point 1's trailing summary record, as a kill mid-write would.
  fs::resize_file(options.store_path, fs::file_size(options.store_path) - 3);

  Aggregator resumed{AggregatorOptions(options)};
  EXPECT_EQ(resumed.load_existing(), 1U);
  EXPECT_TRUE(resumed.is_done(0));
  EXPECT_FALSE(resumed.is_done(1));
  resumed.record(1, 101, {"1"}, synth_metrics(1, 2));
  resumed.finalize();

  // The recovered campaign's artifacts equal an uninterrupted run's.
  const auto clean = store_options("clean", 2, 2, 0);
  Aggregator oracle{AggregatorOptions(clean)};
  oracle.load_existing();
  oracle.record(0, 100, {"0"}, synth_metrics(0, 2));
  oracle.record(1, 101, {"1"}, synth_metrics(1, 2));
  oracle.finalize();
  for (const char* name : {"out.csv", "out.jsonl", "runs.csv"}) {
    EXPECT_EQ(read_lines((dir_ / "s" / name).string()),
              read_lines((dir_ / "clean" / name).string()))
        << name;
  }
}

TEST_F(StoreAggregateTest, DiscardPointsTombstonesWithoutRewrite) {
  const auto options = store_options("s", 3, 2, 0);
  Aggregator agg{AggregatorOptions(options)};
  agg.load_existing();
  for (std::size_t p = 0; p < 3; ++p) {
    agg.record(p, 100 + p, {std::to_string(p)}, synth_metrics(p, 2));
  }
  agg.discard_points({1});
  EXPECT_EQ(agg.done_points(), (std::vector<std::size_t>{0, 2}));
  agg.compact();
  const auto lines = read_lines(options.csv_path);
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_EQ(lines[1].substr(0, 2), "0,");
  EXPECT_EQ(lines[2].substr(0, 2), "2,");
  // The point is recordable again, and finalize completes normally.
  agg.record(1, 101, {"1"}, synth_metrics(1, 2));
  agg.finalize();
  EXPECT_EQ(read_lines(options.csv_path).size(), 4U);
  EXPECT_FALSE(fs::exists(options.store_path));
}

TEST_F(StoreAggregateTest, SeedsFreshStoreFromFinalizedCsv) {
  const auto options = store_options("s", 2, 2, 0);
  {
    Aggregator agg{AggregatorOptions(options)};
    agg.load_existing();
    agg.record(0, 100, {"0"}, synth_metrics(0, 2));
    agg.record(1, 101, {"1"}, synth_metrics(1, 2));
    agg.finalize();
  }
  const auto finalized = read_lines(options.csv_path);
  // Resume over the finalized artifact: no store on disk, so the legacy
  // readers seed a fresh one; everything is already done.
  Aggregator resumed{AggregatorOptions(options)};
  EXPECT_EQ(resumed.load_existing(), 2U);
  EXPECT_EQ(resumed.pending(), std::vector<std::size_t>{});
  resumed.finalize();
  EXPECT_EQ(read_lines(options.csv_path), finalized);
  EXPECT_FALSE(fs::exists(options.store_path));
}

TEST_F(StoreAggregateTest, StoreModeRequiresCsvPath) {
  AggregatorOptions options;
  options.axis_names = {"x"};
  options.total_points = 1;
  options.store_path = (dir_ / "orphan.pasrows").string();
  EXPECT_THROW(Aggregator{std::move(options)}, std::logic_error);
}

TEST_F(StoreAggregateTest, FinalizeRejectsIncompleteCampaignBeforeExport) {
  const auto options = store_options("s", 2, 2, 0);
  Aggregator agg{AggregatorOptions(options)};
  agg.load_existing();
  agg.record(0, 100, {"0"}, synth_metrics(0, 2));
  EXPECT_THROW(agg.finalize(), std::logic_error);
  // The failed finalize touched nothing: no CSV yet, store intact.
  EXPECT_FALSE(fs::exists(options.csv_path));
  EXPECT_TRUE(fs::exists(options.store_path));
}

TEST_F(AggregateTest, SketchQuantilesEngageBeyondExactThreshold) {
  // Above the exact-quantile retention bound (256 reps) record() reads the
  // delay percentiles from the streaming digest fed by reduce_runs; with
  // the digest absent (hand-built metrics, as here) it must fall back to
  // the exact sort so partial fixtures keep working.
  constexpr std::size_t kReps = 300;
  Aggregator agg(csv_, "", {"policy"}, 1);
  agg.load_existing();
  world::ReplicatedMetrics m = fake_metrics(1.0);
  m.runs.resize(kReps);
  std::vector<double> delays;
  for (std::size_t r = 0; r < kReps; ++r) {
    m.runs[r] = metrics::RunMetrics{};
    m.runs[r].avg_delay_s = static_cast<double>((r * 37) % kReps);
    delays.push_back(m.runs[r].avg_delay_s);
    m.delay_digest.add(m.runs[r].avg_delay_s);
  }
  agg.record(0, 100, {"PAS"}, m);
  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 2U);
  const std::string want = "," + io::format_double(m.delay_digest.quantile(0.50)) +
                           "," + io::format_double(m.delay_digest.quantile(0.95)) +
                           "," + io::format_double(m.delay_digest.quantile(0.99)) + ",";
  EXPECT_NE(lines[1].find(want), std::string::npos);
  // And the sketch sits within rank tolerance of the exact quantiles.
  const auto exact = metrics::Percentiles::of(delays);
  EXPECT_NEAR(m.delay_digest.quantile(0.95), exact.p95,
              0.02 * static_cast<double>(kReps));
}

}  // namespace
}  // namespace pas::exp

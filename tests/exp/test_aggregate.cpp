// Aggregator: incremental CSV/JSON output, resume recovery, finalize.
#include "exp/aggregate.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "metrics/stats.hpp"

namespace pas::exp {
namespace {

namespace fs = std::filesystem;

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pas_agg_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    csv_ = (dir_ / "out.csv").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  static world::ReplicatedMetrics fake_metrics(double delay) {
    world::ReplicatedMetrics m;
    m.delay_s = {.n = 2, .mean = delay, .stddev = 0.0, .min = delay,
                 .max = delay, .ci95_half = 0.0};
    m.energy_j = {.n = 2, .mean = 4.0, .stddev = 0.0, .min = 4.0, .max = 4.0,
                  .ci95_half = 0.0};
    m.active_fraction = {.n = 2, .mean = 0.5, .stddev = 0.0, .min = 0.5,
                         .max = 0.5, .ci95_half = 0.0};
    m.mean_missed = 1.0;
    m.mean_broadcasts = 10.0;
    m.runs.resize(2);
    return m;
  }

  static std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  fs::path dir_;
  std::string csv_;
};

TEST_F(AggregateTest, WritesHeaderAndRowsIncrementally) {
  Aggregator agg(csv_, "", {"policy"}, 3);
  EXPECT_EQ(agg.load_existing(), 0U);
  agg.record(1, 111, {"SAS"}, fake_metrics(2.0));
  // One row is on disk (flushed) before the campaign completes.
  auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_EQ(lines[0].substr(0, 11), "point,seed,");
  EXPECT_EQ(lines[1].substr(0, 6), "1,111,");
  EXPECT_FALSE(agg.is_done(0));
  EXPECT_TRUE(agg.is_done(1));
  EXPECT_EQ(agg.pending(), (std::vector<std::size_t>{0, 2}));
}

TEST_F(AggregateTest, ResumeSkipsCompletedPoints) {
  {
    Aggregator agg(csv_, "", {"policy"}, 4);
    agg.load_existing();
    agg.record(0, 100, {"NS"}, fake_metrics(0.0));
    agg.record(2, 102, {"PAS"}, fake_metrics(1.5));
  }  // "killed" campaign: rows 0 and 2 on disk

  Aggregator resumed(csv_, "", {"policy"}, 4);
  EXPECT_EQ(resumed.load_existing(), 2U);
  EXPECT_TRUE(resumed.is_done(0));
  EXPECT_FALSE(resumed.is_done(1));
  EXPECT_TRUE(resumed.is_done(2));
  EXPECT_EQ(resumed.pending(), (std::vector<std::size_t>{1, 3}));

  resumed.record(1, 101, {"SAS"}, fake_metrics(2.0));
  resumed.record(3, 103, {"PAS"}, fake_metrics(3.0));
  resumed.finalize();

  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 5U);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(lines[p + 1].substr(0, 2), std::to_string(p) + ",");
  }
}

TEST_F(AggregateTest, ResumeDropsTruncatedTrailingRow) {
  {
    Aggregator agg(csv_, "", {"policy"}, 3);
    agg.load_existing();
    agg.record(0, 100, {"NS"}, fake_metrics(0.0));
  }
  {
    // Simulate a kill mid-write: append half a row.
    std::ofstream out(csv_, std::ios::app);
    out << "1,101,SAS,2,0.5";  // far fewer cells than the header
  }
  Aggregator resumed(csv_, "", {"policy"}, 3);
  EXPECT_EQ(resumed.load_existing(), 1U);
  EXPECT_FALSE(resumed.is_done(1));
  // The compacted file no longer carries the damaged point-1 line.
  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 2U);  // header + intact row 0
  EXPECT_EQ(lines[1].substr(0, 2), "0,");
}

TEST_F(AggregateTest, HeaderMismatchThrows) {
  {
    std::ofstream out(csv_);
    out << "point,seed,wrong,columns\n";
  }
  Aggregator agg(csv_, "", {"policy"}, 3);
  EXPECT_THROW(agg.load_existing(), std::runtime_error);
}

TEST_F(AggregateTest, FinalizeRequiresCompleteness) {
  Aggregator agg(csv_, "", {}, 2);
  agg.load_existing();
  agg.record(0, 100, {}, fake_metrics(0.0));
  EXPECT_THROW(agg.finalize(), std::logic_error);
}

TEST_F(AggregateTest, JsonLinesMirrorRows) {
  const std::string jsonl = (dir_ / "out.jsonl").string();
  Aggregator agg(csv_, jsonl, {"policy"}, 1);
  agg.load_existing();
  agg.record(0, 100, {"PAS"}, fake_metrics(2.5));
  agg.finalize();
  const auto lines = read_lines(jsonl);
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_NE(lines[0].find("\"policy\":\"PAS\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"delay_mean_s\":2.5"), std::string::npos);
  // Rows must be valid JSON documents.
  EXPECT_NO_THROW((void)io::Json::parse(lines[0]));
}

TEST_F(AggregateTest, NonFiniteMetricsBecomeJsonNull) {
  const std::string jsonl = (dir_ / "out.jsonl").string();
  Aggregator agg(csv_, jsonl, {"policy"}, 1);
  agg.load_existing();
  auto m = fake_metrics(std::numeric_limits<double>::quiet_NaN());
  m.energy_j.mean = std::numeric_limits<double>::infinity();
  agg.record(0, 100, {"PAS"}, m);
  const auto lines = read_lines(jsonl);
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_NE(lines[0].find("\"delay_mean_s\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"energy_mean_j\":null"), std::string::npos);
  EXPECT_NO_THROW((void)io::Json::parse(lines[0]));  // still valid JSON
}

TEST_F(AggregateTest, ResumeRejectsRowsFromDifferentManifest) {
  {
    Aggregator agg(csv_, "", {"max_sleep_s"}, 2,
                   {{"100", "5"}, {"101", "10"}});
    agg.load_existing();
    agg.record(0, 100, {"5"}, fake_metrics(1.0));
  }
  // Same columns, but the campaign now expects different axis values for
  // point 0 (as if the manifest's sweep values changed).
  Aggregator changed(csv_, "", {"max_sleep_s"}, 2,
                     {{"100", "7"}, {"101", "10"}});
  EXPECT_THROW(changed.load_existing(), std::runtime_error);

  // A changed seed_base is caught the same way.
  Aggregator reseeded(csv_, "", {"max_sleep_s"}, 2,
                      {{"999", "5"}, {"998", "10"}});
  EXPECT_THROW(reseeded.load_existing(), std::runtime_error);

  // The matching manifest still resumes cleanly.
  Aggregator same(csv_, "", {"max_sleep_s"}, 2, {{"100", "5"}, {"101", "10"}});
  EXPECT_EQ(same.load_existing(), 1U);
}

TEST_F(AggregateTest, OwnedPointsRestrictPendingAndFinalize) {
  AggregatorOptions options;
  options.csv_path = csv_;
  options.axis_names = {"policy"};
  options.total_points = 4;
  options.owned_points = {0, 2};
  Aggregator agg(std::move(options));
  EXPECT_EQ(agg.owned_count(), 2U);
  agg.load_existing();
  EXPECT_EQ(agg.pending(), (std::vector<std::size_t>{0, 2}));
  // Foreign points are a scheduling bug, not data.
  EXPECT_THROW(agg.record(1, 101, {"SAS"}, fake_metrics(1.0)),
               std::logic_error);
  agg.record(0, 100, {"NS"}, fake_metrics(0.0));
  agg.record(2, 102, {"PAS"}, fake_metrics(2.0));
  // Complete for this shard even though points 1 and 3 have no rows.
  agg.finalize();
  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_EQ(lines[1].substr(0, 2), "0,");
  EXPECT_EQ(lines[2].substr(0, 2), "2,");
}

TEST_F(AggregateTest, PerRunRowsMirrorEveryReplication) {
  const std::string runs_csv = (dir_ / "runs.csv").string();
  AggregatorOptions options;
  options.csv_path = csv_;
  options.per_run_path = runs_csv;
  options.axis_names = {"policy"};
  options.total_points = 1;
  options.replications = 2;
  Aggregator agg(std::move(options));
  agg.load_existing();
  auto m = fake_metrics(2.0);
  m.runs[0].avg_delay_s = 1.5;
  m.runs[1].avg_delay_s = 2.5;
  agg.record(0, 100, {"PAS"}, m);
  agg.finalize();

  const auto lines = read_lines(runs_csv);
  ASSERT_EQ(lines.size(), 3U);  // header + one row per replication
  EXPECT_EQ(lines[0].substr(0, 15), "point,rep,seed,");
  // Replication r runs with seed 100 + r.
  EXPECT_EQ(lines[1].substr(0, 10), "0,0,100,PA");
  EXPECT_EQ(lines[2].substr(0, 10), "0,1,101,PA");
  EXPECT_NE(lines[1].find(",1.5,"), std::string::npos);
  EXPECT_NE(lines[2].find(",2.5,"), std::string::npos);
}

TEST_F(AggregateTest, ResumeDropsPointsWithTornPerRunGroups) {
  const std::string runs_csv = (dir_ / "runs.csv").string();
  const auto make_options = [&] {
    AggregatorOptions options;
    options.csv_path = csv_;
    options.per_run_path = runs_csv;
    options.axis_names = {"policy"};
    options.total_points = 2;
    options.replications = 2;
    return options;
  };
  {
    Aggregator agg(make_options());
    agg.load_existing();
    agg.record(0, 100, {"NS"}, fake_metrics(0.0));
    agg.record(1, 101, {"PAS"}, fake_metrics(1.0));
  }
  // Tear point 1's per-run group (as if killed mid-write): its summary row
  // must not count as done on resume.
  {
    const auto lines = read_lines(runs_csv);
    ASSERT_EQ(lines.size(), 5U);
    std::ofstream out(runs_csv, std::ios::trunc);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << '\n';
  }
  Aggregator resumed(make_options());
  EXPECT_EQ(resumed.load_existing(), 1U);
  EXPECT_TRUE(resumed.is_done(0));
  EXPECT_FALSE(resumed.is_done(1));
  // The compacted per-run file dropped the torn group entirely.
  EXPECT_EQ(read_lines(runs_csv).size(), 3U);
}

TEST_F(AggregateTest, MainCsvCarriesDelayPercentileColumns) {
  Aggregator agg(csv_, "", {"policy"}, 1);
  agg.load_existing();
  auto m = fake_metrics(2.0);
  m.runs[0].avg_delay_s = 1.0;
  m.runs[1].avg_delay_s = 3.0;
  agg.record(0, 100, {"PAS"}, m);
  const auto lines = read_lines(csv_);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_NE(lines[0].find("delay_p50_s,delay_p95_s,delay_p99_s"),
            std::string::npos);
  // Interpolated over the per-run delays {1, 3}, rendered exactly as the
  // aggregator does (round-trip formatting).
  const auto pct = metrics::Percentiles::of({1.0, 3.0});
  const std::string want = "," + io::format_double(pct.p50) + "," +
                           io::format_double(pct.p95) + "," +
                           io::format_double(pct.p99) + ",";
  EXPECT_NE(lines[1].find(want), std::string::npos);
}

TEST_F(AggregateTest, InMemoryAggregationNeedsNoFiles) {
  Aggregator agg("", "", {"policy"}, 2);
  agg.load_existing();
  agg.record(0, 1, {"NS"}, fake_metrics(0.0));
  agg.record(1, 2, {"PAS"}, fake_metrics(1.0));
  agg.finalize();
  EXPECT_EQ(agg.done_count(), 2U);
  EXPECT_EQ(agg.summaries().at(1).delay_s.mean, 1.0);
  EXPECT_TRUE(fs::directory_iterator(dir_) == fs::directory_iterator());
}

}  // namespace
}  // namespace pas::exp

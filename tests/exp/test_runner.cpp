// End-to-end campaign execution: parallel-vs-serial equality, resume, and
// the no-clobber guard. Small grids keep the suite fast; the inner
// simulations are real.
#include "exp/runner.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "world/paper_setup.hpp"

namespace pas::exp {
namespace {

namespace fs = std::filesystem;

Manifest small_manifest() {
  Manifest m;
  m.name = "runner-test";
  m.base = world::paper_scenario();
  m.base.duration_s = 60.0;  // shortened horizon keeps the suite quick
  m.replications = 2;
  m.seed_base = 3;
  m.axes = {
      Axis{.kind = AxisKind::kPolicy, .labels = {"NS", "SAS", "PAS"}},
      Axis{.kind = AxisKind::kMaxSleep, .numbers = {5.0, 15.0}},
  };
  return m;
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pas_runner_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  fs::path dir_;
};

TEST_F(RunnerTest, SerialAndParallelOutputsAreByteIdentical) {
  const Manifest m = small_manifest();

  CampaignOptions serial;
  serial.jobs = 1;
  serial.out_csv = (dir_ / "serial.csv").string();
  const auto serial_report = run_campaign(m, serial);

  CampaignOptions parallel;
  parallel.jobs = 4;
  parallel.out_csv = (dir_ / "parallel.csv").string();
  const auto parallel_report = run_campaign(m, parallel);

  EXPECT_EQ(serial_report.total_points, 6U);
  EXPECT_EQ(serial_report.computed, 6U);
  EXPECT_EQ(parallel_report.computed, 6U);
  const std::string a = slurp(dir_ / "serial.csv");
  const std::string b = slurp(dir_ / "parallel.csv");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST_F(RunnerTest, ResumeRecomputesOnlyMissingPoints) {
  const Manifest m = small_manifest();
  const std::string out = (dir_ / "campaign.csv").string();

  CampaignOptions options;
  options.jobs = 1;
  options.out_csv = out;
  run_campaign(m, options);
  const std::string complete = slurp(out);

  // Delete half the rows (keep the header and every second row — the
  // odd-indexed points), as if the campaign had been killed.
  {
    std::istringstream in(complete);
    std::ofstream truncated(out, std::ios::trunc);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
      if (n == 0 || n % 2 == 0) truncated << line << '\n';
      ++n;
    }
  }

  options.resume = true;
  std::vector<std::size_t> recomputed;
  options.progress = [&recomputed](const PointSummary& s, std::size_t,
                                   std::size_t) {
    recomputed.push_back(s.point);
  };
  const auto report = run_campaign(m, options);
  EXPECT_EQ(report.skipped, 3U);
  EXPECT_EQ(report.computed, 3U);
  EXPECT_EQ(recomputed.size(), 3U);
  // Only even points (the deleted rows) were simulated again...
  for (const auto p : recomputed) EXPECT_EQ(p % 2, 0U) << "point " << p;
  // ...and the resumed file is byte-identical to the uninterrupted run.
  EXPECT_EQ(slurp(out), complete);
}

TEST_F(RunnerTest, ResumeRejectsChangedReplicationCount) {
  Manifest m = small_manifest();
  CampaignOptions options;
  options.jobs = 1;
  options.out_csv = (dir_ / "campaign.csv").string();
  run_campaign(m, options);
  // Point seeds don't depend on the replication count, so only the rows'
  // replications cell betrays the change; resuming must refuse to mix.
  m.replications = 5;
  options.resume = true;
  EXPECT_THROW((void)run_campaign(m, options), std::runtime_error);
}

TEST_F(RunnerTest, ResumeRejectsPerRunRowsFromAnotherCampaign) {
  Manifest m = small_manifest();
  CampaignOptions options;
  options.jobs = 1;
  options.out_csv = (dir_ / "campaign.csv").string();
  options.per_run_csv = (dir_ / "runs.csv").string();
  run_campaign(m, options);
  // Same axes and replication count, different seeds: a fresh summary file
  // plus the old per-run file must be refused via the run rows' seed cells,
  // not silently adopted into the new campaign's artifact.
  m.seed_base += 1;
  options.out_csv = (dir_ / "campaign2.csv").string();
  options.resume = true;
  EXPECT_THROW((void)run_campaign(m, options), std::runtime_error);
}

TEST_F(RunnerTest, RefusesToClobberWithoutResume) {
  const Manifest m = small_manifest();
  CampaignOptions options;
  options.jobs = 1;
  options.out_csv = (dir_ / "campaign.csv").string();
  run_campaign(m, options);
  EXPECT_THROW(run_campaign(m, options), std::runtime_error);
}

TEST_F(RunnerTest, ProgressReportsMonotonicCompletion) {
  const Manifest m = small_manifest();
  CampaignOptions options;
  options.jobs = 2;
  std::vector<std::size_t> done_counts;
  options.progress = [&done_counts](const PointSummary&, std::size_t done,
                                    std::size_t total) {
    EXPECT_EQ(total, 6U);
    done_counts.push_back(done);
  };
  const auto report = run_campaign(m, options);
  EXPECT_EQ(report.computed, 6U);
  ASSERT_EQ(done_counts.size(), 6U);
  // Counts are non-decreasing (record and progress are not one atomic step,
  // so two workers may observe the same done count) and end complete.
  for (std::size_t i = 1; i < done_counts.size(); ++i) {
    EXPECT_LE(done_counts[i - 1], done_counts[i]);
  }
  EXPECT_EQ(done_counts.back(), 6U);
}

TEST_F(RunnerTest, RunPointMatchesDirectReplication) {
  const Manifest m = small_manifest();
  const auto points = expand_grid(m);
  const auto engine = run_point(points[4], m.replications);
  const auto direct =
      world::run_replicated(points[4].config, m.replications, nullptr);
  EXPECT_DOUBLE_EQ(engine.delay_s.mean, direct.delay_s.mean);
  EXPECT_DOUBLE_EQ(engine.energy_j.mean, direct.energy_j.mean);
  EXPECT_EQ(engine.runs.size(), direct.runs.size());
}

TEST_F(RunnerTest, RunPointOnPoolMatchesSerial) {
  const Manifest m = small_manifest();
  const auto points = expand_grid(m);
  runtime::ThreadPool pool(4);
  const auto parallel = run_point(points[2], 4, &pool);
  const auto serial = run_point(points[2], 4);
  EXPECT_DOUBLE_EQ(parallel.delay_s.mean, serial.delay_s.mean);
  EXPECT_DOUBLE_EQ(parallel.delay_s.stddev, serial.delay_s.stddev);
  EXPECT_DOUBLE_EQ(parallel.energy_j.mean, serial.energy_j.mean);
}

// A replication-heavy single point split into sub-jobs must reproduce the
// serial bytes exactly: the split only changes the schedule, never the
// per-replication seeds or the reduction order.
TEST_F(RunnerTest, ReplicationSplitIsByteIdenticalToSerial) {
  Manifest m = small_manifest();
  m.axes.clear();  // one point
  m.replications = 6;

  CampaignOptions serial;
  serial.jobs = 1;
  serial.out_csv = (dir_ / "serial.csv").string();
  serial.per_run_csv = (dir_ / "serial_runs.csv").string();
  run_campaign(m, serial);

  CampaignOptions split;
  split.jobs = 4;
  split.rep_chunk = 1;  // every replication its own sub-job
  split.out_csv = (dir_ / "split.csv").string();
  split.per_run_csv = (dir_ / "split_runs.csv").string();
  const auto report = run_campaign(m, split);
  EXPECT_EQ(report.computed, 1U);

  EXPECT_EQ(slurp(dir_ / "split.csv"), slurp(dir_ / "serial.csv"));
  EXPECT_EQ(slurp(dir_ / "split_runs.csv"), slurp(dir_ / "serial_runs.csv"));

  // The automatic chunk (rep_chunk = 0) picks some split for a one-point
  // campaign; whatever it picks, the bytes must not change.
  CampaignOptions autosplit;
  autosplit.jobs = 4;
  autosplit.out_csv = (dir_ / "auto.csv").string();
  run_campaign(m, autosplit);
  EXPECT_EQ(slurp(dir_ / "auto.csv"), slurp(dir_ / "serial.csv"));
}

// Explicit lease-shaped ownership: an arbitrary subset of the grid runs
// into its own file, and a foreign-point row is rejected on resume just
// like modulo shards — the contract the orchestrator's workers rest on.
TEST_F(RunnerTest, ExplicitOwnedPointsRunExactlyThatSubset) {
  const Manifest m = small_manifest();
  CampaignOptions options;
  options.jobs = 1;
  options.owned_points = {0, 3, 4};  // not expressible as index % N == i
  options.out_csv = (dir_ / "lease.csv").string();
  const auto report = run_campaign(m, options);
  EXPECT_EQ(report.total_points, 6U);
  EXPECT_EQ(report.owned_points, 3U);
  EXPECT_EQ(report.computed, 3U);

  std::ifstream in(dir_ / "lease.csv");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  std::vector<std::string> first_cells;
  while (std::getline(in, line)) {
    first_cells.push_back(line.substr(0, line.find(',')));
  }
  EXPECT_EQ(first_cells, (std::vector<std::string>{"0", "3", "4"}));

  // The same file under modulo ownership holds foreign points → refused.
  CampaignOptions shard;
  shard.jobs = 1;
  shard.shard_index = 0;
  shard.shard_count = 2;
  shard.resume = true;
  shard.out_csv = options.out_csv;
  EXPECT_THROW((void)run_campaign(m, shard), std::runtime_error);

  // Both ownership specs at once is a caller bug, not a silent pick.
  CampaignOptions both = options;
  both.shard_count = 2;
  both.resume = true;
  EXPECT_THROW((void)run_campaign(m, both), std::invalid_argument);
}

TEST_F(RunnerTest, PerRunOutputHasOneRowPerReplication) {
  const Manifest m = small_manifest();
  CampaignOptions options;
  options.jobs = 2;
  options.out_csv = (dir_ / "out.csv").string();
  options.per_run_csv = (dir_ / "runs.csv").string();
  run_campaign(m, options);

  std::ifstream in(dir_ / "runs.csv");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.substr(0, 15), "point,rep,seed,");
  EXPECT_NE(line.find("p95_delay_s"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 6U * m.replications);
}

}  // namespace
}  // namespace pas::exp

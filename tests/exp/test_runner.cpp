// End-to-end campaign execution: parallel-vs-serial equality, resume, and
// the no-clobber guard. Small grids keep the suite fast; the inner
// simulations are real.
#include "exp/runner.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "world/paper_setup.hpp"

namespace pas::exp {
namespace {

namespace fs = std::filesystem;

Manifest small_manifest() {
  Manifest m;
  m.name = "runner-test";
  m.base = world::paper_scenario();
  m.base.duration_s = 60.0;  // shortened horizon keeps the suite quick
  m.replications = 2;
  m.seed_base = 3;
  m.axes = {
      Axis{.kind = AxisKind::kPolicy, .labels = {"NS", "SAS", "PAS"}},
      Axis{.kind = AxisKind::kMaxSleep, .numbers = {5.0, 15.0}},
  };
  return m;
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pas_runner_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  fs::path dir_;
};

TEST_F(RunnerTest, SerialAndParallelOutputsAreByteIdentical) {
  const Manifest m = small_manifest();

  CampaignOptions serial;
  serial.jobs = 1;
  serial.out_csv = (dir_ / "serial.csv").string();
  const auto serial_report = run_campaign(m, serial);

  CampaignOptions parallel;
  parallel.jobs = 4;
  parallel.out_csv = (dir_ / "parallel.csv").string();
  const auto parallel_report = run_campaign(m, parallel);

  EXPECT_EQ(serial_report.total_points, 6U);
  EXPECT_EQ(serial_report.computed, 6U);
  EXPECT_EQ(parallel_report.computed, 6U);
  const std::string a = slurp(dir_ / "serial.csv");
  const std::string b = slurp(dir_ / "parallel.csv");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST_F(RunnerTest, ResumeRecomputesOnlyMissingPoints) {
  const Manifest m = small_manifest();
  const std::string out = (dir_ / "campaign.csv").string();

  CampaignOptions options;
  options.jobs = 1;
  options.out_csv = out;
  run_campaign(m, options);
  const std::string complete = slurp(out);

  // Delete half the rows (keep the header and every second row — the
  // odd-indexed points), as if the campaign had been killed.
  {
    std::istringstream in(complete);
    std::ofstream truncated(out, std::ios::trunc);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
      if (n == 0 || n % 2 == 0) truncated << line << '\n';
      ++n;
    }
  }

  options.resume = true;
  std::vector<std::size_t> recomputed;
  options.progress = [&recomputed](const PointSummary& s, std::size_t,
                                   std::size_t) {
    recomputed.push_back(s.point);
  };
  const auto report = run_campaign(m, options);
  EXPECT_EQ(report.skipped, 3U);
  EXPECT_EQ(report.computed, 3U);
  EXPECT_EQ(recomputed.size(), 3U);
  // Only even points (the deleted rows) were simulated again...
  for (const auto p : recomputed) EXPECT_EQ(p % 2, 0U) << "point " << p;
  // ...and the resumed file is byte-identical to the uninterrupted run.
  EXPECT_EQ(slurp(out), complete);
}

TEST_F(RunnerTest, RefusesToClobberWithoutResume) {
  const Manifest m = small_manifest();
  CampaignOptions options;
  options.jobs = 1;
  options.out_csv = (dir_ / "campaign.csv").string();
  run_campaign(m, options);
  EXPECT_THROW(run_campaign(m, options), std::runtime_error);
}

TEST_F(RunnerTest, ProgressReportsMonotonicCompletion) {
  const Manifest m = small_manifest();
  CampaignOptions options;
  options.jobs = 2;
  std::vector<std::size_t> done_counts;
  options.progress = [&done_counts](const PointSummary&, std::size_t done,
                                    std::size_t total) {
    EXPECT_EQ(total, 6U);
    done_counts.push_back(done);
  };
  const auto report = run_campaign(m, options);
  EXPECT_EQ(report.computed, 6U);
  ASSERT_EQ(done_counts.size(), 6U);
  // Counts are non-decreasing (record and progress are not one atomic step,
  // so two workers may observe the same done count) and end complete.
  for (std::size_t i = 1; i < done_counts.size(); ++i) {
    EXPECT_LE(done_counts[i - 1], done_counts[i]);
  }
  EXPECT_EQ(done_counts.back(), 6U);
}

TEST_F(RunnerTest, RunPointMatchesDirectReplication) {
  const Manifest m = small_manifest();
  const auto points = expand_grid(m);
  const auto engine = run_point(points[4], m.replications);
  const auto direct =
      world::run_replicated(points[4].config, m.replications, nullptr);
  EXPECT_DOUBLE_EQ(engine.delay_s.mean, direct.delay_s.mean);
  EXPECT_DOUBLE_EQ(engine.energy_j.mean, direct.energy_j.mean);
  EXPECT_EQ(engine.runs.size(), direct.runs.size());
}

}  // namespace
}  // namespace pas::exp

// Process-level sharding: deterministic grid partitioning, independently
// resumable shard outputs, and merge_outputs() recombination that is
// byte-identical to an unsharded run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/aggregate.hpp"
#include "exp/runner.hpp"
#include "world/paper_setup.hpp"

namespace pas::exp {
namespace {

namespace fs = std::filesystem;

Manifest small_manifest() {
  Manifest m;
  m.name = "shard-test";
  m.base = world::paper_scenario();
  m.base.duration_s = 60.0;  // shortened horizon keeps the suite quick
  m.replications = 2;
  m.seed_base = 3;
  m.axes = {
      Axis{.kind = AxisKind::kPolicy, .labels = {"NS", "SAS", "PAS"}},
      Axis{.kind = AxisKind::kMaxSleep, .numbers = {5.0, 15.0}},
  };
  return m;
}

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pas_shard_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  /// Runs one shard of the manifest; returns the report.
  CampaignReport run_shard(const Manifest& m, std::size_t index,
                           std::size_t count, const std::string& out,
                           const std::string& per_run = {},
                           bool resume = false) {
    CampaignOptions options;
    options.jobs = 2;
    options.shard_index = index;
    options.shard_count = count;
    options.out_csv = out;
    options.per_run_csv = per_run;
    options.resume = resume;
    return run_campaign(m, options);
  }

  fs::path dir_;
};

TEST_F(ShardTest, ShardsPartitionTheGridByIndexModulo) {
  const Manifest m = small_manifest();
  const auto r0 = run_shard(m, 0, 2, path("s0.csv"));
  const auto r1 = run_shard(m, 1, 2, path("s1.csv"));
  EXPECT_EQ(r0.total_points, 6U);
  EXPECT_EQ(r0.owned_points, 3U);  // points 0, 2, 4
  EXPECT_EQ(r0.computed, 3U);
  EXPECT_EQ(r1.owned_points, 3U);  // points 1, 3, 5

  // Shard files carry exactly the owned points, in index order.
  std::ifstream in(path("s0.csv"));
  std::string line;
  std::getline(in, line);  // header
  std::size_t expected = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.substr(0, 2), std::to_string(expected) + ",");
    expected += 2;
  }
  EXPECT_EQ(expected, 6U);
}

TEST_F(ShardTest, MergedShardsAreByteIdenticalToUnshardedRun) {
  const Manifest m = small_manifest();
  CampaignOptions full;
  full.jobs = 1;
  full.out_csv = path("full.csv");
  full.per_run_csv = path("full_runs.csv");
  run_campaign(m, full);

  run_shard(m, 0, 3, path("s0.csv"), path("s0_runs.csv"));
  run_shard(m, 1, 3, path("s1.csv"), path("s1_runs.csv"));
  run_shard(m, 2, 3, path("s2.csv"), path("s2_runs.csv"));

  const auto rows = merge_outputs(
      {path("s0.csv"), path("s1.csv"), path("s2.csv")}, path("merged.csv"),
      &m);
  EXPECT_EQ(rows, 6U);
  EXPECT_EQ(slurp(path("merged.csv")), slurp(path("full.csv")));

  // The per-run CSVs merge the same way (layout detected via the header).
  const auto run_rows = merge_outputs(
      {path("s0_runs.csv"), path("s1_runs.csv"), path("s2_runs.csv")},
      path("merged_runs.csv"), &m);
  EXPECT_EQ(run_rows, 12U);  // 6 points x 2 replications
  EXPECT_EQ(slurp(path("merged_runs.csv")), slurp(path("full_runs.csv")));
}

TEST_F(ShardTest, TruncatedShardResumesToIdenticalBytes) {
  const Manifest m = small_manifest();
  run_shard(m, 0, 2, path("s0.csv"));
  const std::string complete = slurp(path("s0.csv"));

  // Keep the header and the first owned row only (killed after point 0).
  {
    std::istringstream in(complete);
    std::ofstream out(path("s0.csv"), std::ios::trunc);
    std::string line;
    for (int i = 0; i < 2 && std::getline(in, line); ++i) out << line << '\n';
  }
  std::vector<std::size_t> recomputed;
  CampaignOptions options;
  options.jobs = 1;
  options.shard_index = 0;
  options.shard_count = 2;
  options.out_csv = path("s0.csv");
  options.resume = true;
  options.progress = [&recomputed](const PointSummary& s, std::size_t,
                                   std::size_t) {
    recomputed.push_back(s.point);
  };
  const auto report = run_campaign(m, options);
  EXPECT_EQ(report.skipped, 1U);
  EXPECT_EQ(report.computed, 2U);
  EXPECT_EQ(recomputed, (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(slurp(path("s0.csv")), complete);
}

TEST_F(ShardTest, ResumeRejectsRowsFromAnotherShard) {
  const Manifest m = small_manifest();
  run_shard(m, 0, 2, path("s0.csv"));
  // Resuming shard 0's file as shard 1 would silently drop shard 0's rows
  // and duplicate work; it must fail loudly instead.
  EXPECT_THROW(run_shard(m, 1, 2, path("s0.csv"), {}, /*resume=*/true),
               std::runtime_error);
}

TEST_F(ShardTest, MergeRejectsOverlappingShards) {
  const Manifest m = small_manifest();
  run_shard(m, 0, 2, path("s0.csv"));
  EXPECT_THROW(
      (void)merge_outputs({path("s0.csv"), path("s0.csv")}, path("out.csv")),
      std::runtime_error);
}

TEST_F(ShardTest, MergeRejectsMissingShard) {
  const Manifest m = small_manifest();
  run_shard(m, 0, 2, path("s0.csv"));
  // Without the odd-point shard there are gaps; with or without a manifest
  // the merge must refuse to write a partial "full" output.
  EXPECT_THROW((void)merge_outputs({path("s0.csv")}, path("out.csv")),
               std::runtime_error);
  EXPECT_THROW((void)merge_outputs({path("s0.csv")}, path("out.csv"), &m),
               std::runtime_error);
}

TEST_F(ShardTest, MergeRejectsTruncatedRow) {
  const Manifest m = small_manifest();
  run_shard(m, 0, 2, path("s0.csv"));
  run_shard(m, 1, 2, path("s1.csv"));
  {
    std::ofstream out(path("s1.csv"), std::ios::app);
    out << "5,12345,PAS";  // torn mid-write
  }
  EXPECT_THROW((void)merge_outputs({path("s0.csv"), path("s1.csv")},
                                   path("out.csv")),
               std::runtime_error);
}

TEST_F(ShardTest, MergeRejectsMismatchedHeaders) {
  {
    std::ofstream a(path("a.csv"));
    a << "point,seed,policy,replications\n0,1,NS,2\n";
    std::ofstream b(path("b.csv"));
    b << "point,seed,max_sleep_s,replications\n1,2,5,2\n";
  }
  EXPECT_THROW(
      (void)merge_outputs({path("a.csv"), path("b.csv")}, path("out.csv")),
      std::runtime_error);
}

TEST_F(ShardTest, MergeRejectsShardsOfADifferentManifest) {
  const Manifest m = small_manifest();
  run_shard(m, 0, 2, path("s0.csv"));
  run_shard(m, 1, 2, path("s1.csv"));
  Manifest other = m;
  other.seed_base = 99;  // same columns, different seeds per point
  EXPECT_THROW((void)merge_outputs({path("s0.csv"), path("s1.csv")},
                                   path("out.csv"), &other),
               std::runtime_error);
  // Seeds are independent of the replication count, so this mismatch is
  // only visible in the rows' replications cell — it must still be caught.
  Manifest recount = m;
  recount.replications = 5;
  EXPECT_THROW((void)merge_outputs({path("s0.csv"), path("s1.csv")},
                                   path("out.csv"), &recount),
               std::runtime_error);
}

TEST_F(ShardTest, RunCampaignValidatesShardSpec) {
  const Manifest m = small_manifest();
  CampaignOptions options;
  options.shard_count = 0;
  EXPECT_THROW((void)run_campaign(m, options), std::invalid_argument);
  options.shard_count = 2;
  options.shard_index = 2;
  EXPECT_THROW((void)run_campaign(m, options), std::invalid_argument);
}

}  // namespace
}  // namespace pas::exp

// RowStore: binary framing, torn-tail truncation, identity hash, spill runs.
#include "exp/row_store.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace pas::exp {
namespace {

namespace fs = std::filesystem;

class RowStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pas_rowstore_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "out.csv.pasrows").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<RowStore::Record> scan_all(RowStore& store) {
    std::vector<RowStore::Record> records;
    store.scan([&records](const RowStore::Record& r) { records.push_back(r); });
    return records;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(RowStoreTest, RoundTripsRecordsThroughScan) {
  RowStore store(path_, 42);
  store.open_append();
  store.append(RowStore::Kind::kPerRun, 3, 1, {"3", "1", "abc", ""});
  store.append(RowStore::Kind::kSummary, 3, 0, {"3", "0.5"});
  store.append(RowStore::Kind::kTombstone, 7, 0, {});
  store.flush();
  store.close();

  RowStore reader(path_, 42);
  const auto records = scan_all(reader);
  ASSERT_EQ(records.size(), 3U);
  EXPECT_EQ(records[0].kind, RowStore::Kind::kPerRun);
  EXPECT_EQ(records[0].point, 3U);
  EXPECT_EQ(records[0].rep, 1U);
  EXPECT_EQ(records[0].cells,
            (std::vector<std::string>{"3", "1", "abc", ""}));
  EXPECT_EQ(records[1].kind, RowStore::Kind::kSummary);
  EXPECT_EQ(records[2].kind, RowStore::Kind::kTombstone);
  EXPECT_EQ(records[2].point, 7U);
  // seq is the record's byte offset: strictly increasing.
  EXPECT_LT(records[0].seq, records[1].seq);
  EXPECT_LT(records[1].seq, records[2].seq);
}

TEST_F(RowStoreTest, IdentityHashMismatchThrows) {
  {
    RowStore store(path_, 1);
    store.open_append();
    store.append(RowStore::Kind::kSummary, 0, 0, {"x"});
    store.flush();
  }
  RowStore other(path_, 2);
  EXPECT_THROW(other.open_append(), std::runtime_error);
  EXPECT_THROW(scan_all(other), std::runtime_error);
}

TEST_F(RowStoreTest, ForeignFileThrows) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "point,seed\n0,12\n";  // a CSV is not a row store
  }
  RowStore store(path_, 42);
  EXPECT_THROW(store.open_append(), std::runtime_error);
}

TEST_F(RowStoreTest, TornTailIsDroppedOnReopen) {
  {
    RowStore store(path_, 42);
    store.open_append();
    store.append(RowStore::Kind::kSummary, 0, 0, {"a"});
    store.append(RowStore::Kind::kSummary, 1, 0, {"b"});
    store.flush();
  }
  const auto full_size = fs::file_size(path_);
  // Chop into the last record's payload: the clean prefix must survive and
  // the torn bytes must be truncated away by open_append.
  fs::resize_file(path_, full_size - 3);
  RowStore store(path_, 42);
  store.open_append();
  store.append(RowStore::Kind::kSummary, 2, 0, {"c"});
  store.flush();
  store.close();

  RowStore reader(path_, 42);
  const auto records = scan_all(reader);
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[0].cells, (std::vector<std::string>{"a"}));
  EXPECT_EQ(records[1].cells, (std::vector<std::string>{"c"}));
}

TEST_F(RowStoreTest, CorruptPayloadEndsScanAtCleanPrefix) {
  {
    RowStore store(path_, 42);
    store.open_append();
    store.append(RowStore::Kind::kSummary, 0, 0, {"good"});
    store.append(RowStore::Kind::kSummary, 1, 0, {"flipped"});
    store.flush();
  }
  // Flip one payload byte of the last record: the CRC catches it and the
  // scan stops at the clean prefix instead of returning garbage cells.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('!');
  }
  RowStore reader(path_, 42);
  const auto records = scan_all(reader);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].cells, (std::vector<std::string>{"good"}));
}

TEST_F(RowStoreTest, SpillRunRoundTripsThroughRunReader) {
  std::vector<RowStore::Record> records;
  for (std::uint64_t i = 0; i < 100; ++i) {
    RowStore::Record r;
    r.kind = RowStore::Kind::kPerRun;
    r.point = i / 4;
    r.rep = static_cast<std::uint32_t>(i % 4);
    r.seq = i * 10;
    r.cells = {std::to_string(i), std::string(i % 7, 'x')};
    records.push_back(std::move(r));
  }
  const std::string run_path = (dir_ / "spill.run0").string();
  RowStore::write_run(run_path, records);

  RowStore::RunReader reader(run_path);
  RowStore::Record r;
  std::size_t n = 0;
  while (reader.next(r)) {
    ASSERT_LT(n, records.size());
    EXPECT_EQ(r.kind, records[n].kind);
    EXPECT_EQ(r.point, records[n].point);
    EXPECT_EQ(r.rep, records[n].rep);
    EXPECT_EQ(r.seq, records[n].seq);
    EXPECT_EQ(r.cells, records[n].cells);
    ++n;
  }
  EXPECT_EQ(n, records.size());
}

TEST_F(RowStoreTest, HashIdentityCoversColumnsPointsAndIdentity) {
  const std::vector<std::string> cols = {"point", "seed", "x"};
  const std::vector<std::vector<std::string>> id = {{"12", "a"}, {"13", "b"}};
  const auto base = RowStore::hash_identity(cols, 2, 4, id);
  EXPECT_EQ(base, RowStore::hash_identity(cols, 2, 4, id));
  EXPECT_NE(base, RowStore::hash_identity({"point", "seed", "y"}, 2, 4, id));
  EXPECT_NE(base, RowStore::hash_identity(cols, 3, 4, id));
  EXPECT_NE(base, RowStore::hash_identity(cols, 2, 5, id));
  EXPECT_NE(base,
            RowStore::hash_identity(cols, 2, 4, {{"12", "a"}, {"13", "c"}}));
}

TEST_F(RowStoreTest, PathForAppendsExtension) {
  EXPECT_EQ(RowStore::path_for("out.csv"), "out.csv.pasrows");
}

}  // namespace
}  // namespace pas::exp

// Campaign telemetry: the JSONL sink's lifecycle, the row schema, part-file
// merging, and the hard invariant that --metrics never changes the CSV.
#include "exp/telemetry.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "exp/runner.hpp"
#include "world/paper_setup.hpp"

namespace pas::exp {
namespace {

namespace fs = std::filesystem;

Manifest small_manifest() {
  Manifest m;
  m.name = "telemetry-test";
  m.base = world::paper_scenario();
  m.base.duration_s = 60.0;
  m.replications = 2;
  m.seed_base = 3;
  m.axes = {
      Axis{.kind = AxisKind::kPolicy, .labels = {"NS", "SAS", "PAS"}},
      Axis{.kind = AxisKind::kMaxSleep, .numbers = {5.0, 15.0}},
  };
  return m;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pas_telemetry_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static std::vector<io::Json> parse_lines(const fs::path& path) {
    std::ifstream in(path);
    std::vector<io::Json> rows;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) rows.push_back(io::Json::parse(line));
    }
    return rows;
  }

  /// A fabricated two-run ReplicatedMetrics with recognizable counters.
  static world::ReplicatedMetrics fake_metrics(std::uint64_t base) {
    world::ReplicatedMetrics m;
    m.runs.resize(2);
    for (auto& run : m.runs) {
      run.kernel.events_dispatched = base;
      run.kernel.max_pending = base + 1;
      run.protocol.wakeups = base * 2;
      run.protocol.sleep_s.record(2.0);
    }
    return m;
  }

  fs::path dir_;
};

TEST_F(TelemetryTest, PointRowSchema) {
  const Manifest m = small_manifest();
  const auto points = expand_grid(m);
  const auto row = telemetry_point_row(points[4], axis_columns(m),
                                       fake_metrics(10));
  EXPECT_EQ(row.at("kind").as_string(), "point");
  EXPECT_DOUBLE_EQ(row.at("point").as_double(), 4.0);
  EXPECT_EQ(row.at("seed").as_string(), std::to_string(points[4].seed));
  EXPECT_DOUBLE_EQ(row.at("replications").as_double(), 2.0);
  EXPECT_EQ(row.at("policy").as_string(), "PAS");

  // Axes echo the grid coordinates under the CSV column names.
  const auto& axes = row.at("axes").as_object();
  EXPECT_EQ(axes.size(), 2U);

  // Kernel and protocol sections sum the replications.
  EXPECT_DOUBLE_EQ(row.at("kernel").at("events_dispatched").as_double(), 20.0);
  EXPECT_DOUBLE_EQ(row.at("kernel").at("max_pending").as_double(), 11.0);
  EXPECT_DOUBLE_EQ(row.at("protocol").at("wakeups").as_double(), 40.0);
  EXPECT_DOUBLE_EQ(row.at("protocol").at("sleep_s").at("total").as_double(),
                   2.0);
}

TEST_F(TelemetryTest, SinkAppendsResumesAndFinalizesSorted) {
  const Manifest m = small_manifest();
  const auto points = expand_grid(m);
  const std::string path = (dir_ / "metrics.jsonl").string();

  TelemetryOptions options;
  options.path = path;
  options.axis_names = axis_columns(m);
  options.total_points = points.size();
  {
    TelemetrySink sink(options);
    EXPECT_EQ(sink.load_existing(), 0U);
    sink.record(points[3], fake_metrics(5));
    sink.record(points[1], fake_metrics(7));
    sink.record(points[1], fake_metrics(9));  // duplicate: first wins
    EXPECT_EQ(sink.recorded_count(), 2U);
    // No finalize: the append-mode file is the crash artifact.
  }
  {
    // Resume keeps existing rows and only adds the new ones.
    TelemetrySink sink(options);
    EXPECT_EQ(sink.load_existing(), 2U);
    sink.record(points[0], fake_metrics(1));
    io::JsonObject trailer;
    trailer["kind"] = "registry";
    sink.finalize({io::Json(std::move(trailer))});
  }

  const auto rows = parse_lines(path);
  ASSERT_EQ(rows.size(), 4U);
  EXPECT_DOUBLE_EQ(rows[0].at("point").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(rows[1].at("point").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(rows[2].at("point").as_double(), 3.0);
  EXPECT_EQ(rows[3].at("kind").as_string(), "registry");
  // Point 1 kept the first-recorded payload.
  EXPECT_DOUBLE_EQ(rows[1].at("protocol").at("wakeups").as_double(), 28.0);
}

TEST_F(TelemetryTest, LoadExistingDropsGarbageAndForeignRows) {
  const Manifest m = small_manifest();
  const auto points = expand_grid(m);
  const std::string path = (dir_ / "metrics.jsonl").string();
  {
    std::ofstream out(path);
    out << "not json at all\n";
    out << "{\"kind\":\"registry\",\"scope\":\"campaign\"}\n";  // stale trailer
    out << "{\"kind\":\"point\",\"point\":999}\n";  // outside the grid
    out << "{\"kind\":\"point\",\"point\":2}\n";    // the one good row
  }
  TelemetryOptions options;
  options.path = path;
  options.axis_names = axis_columns(m);
  options.total_points = points.size();
  TelemetrySink sink(options);
  EXPECT_EQ(sink.load_existing(), 1U);
  sink.finalize();
  const auto rows = parse_lines(path);
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_DOUBLE_EQ(rows[0].at("point").as_double(), 2.0);
}

TEST_F(TelemetryTest, MergeDeduplicatesFirstInputWins) {
  const Manifest m = small_manifest();
  const auto points = expand_grid(m);
  const auto names = axis_columns(m);
  const std::string a = (dir_ / "m.w0").string();
  const std::string b = (dir_ / "m.w1").string();
  {
    std::ofstream out(a);
    out << telemetry_point_row(points[0], names, fake_metrics(1)).dump()
        << '\n';
    out << telemetry_point_row(points[2], names, fake_metrics(2)).dump()
        << '\n';
  }
  {
    std::ofstream out(b);
    out << telemetry_point_row(points[2], names, fake_metrics(50)).dump()
        << '\n';
    out << telemetry_point_row(points[1], names, fake_metrics(3)).dump()
        << '\n';
  }

  const std::string merged = (dir_ / "merged.jsonl").string();
  io::JsonObject trailer;
  trailer["kind"] = "registry";
  trailer["scope"] = "orchestrator";
  // The missing third input stands in for a worker that wrote nothing.
  EXPECT_EQ(merge_telemetry({a, b, (dir_ / "m.w2").string()}, merged,
                            {io::Json(std::move(trailer))}),
            3U);

  const auto rows = parse_lines(merged);
  ASSERT_EQ(rows.size(), 4U);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(rows[i].at("point").as_double(),
                     static_cast<double>(i));
  }
  // Point 2 came from the first input, not the duplicate in the second.
  EXPECT_DOUBLE_EQ(rows[2].at("kernel").at("events_dispatched").as_double(),
                   4.0);
  EXPECT_EQ(rows[3].at("scope").as_string(), "orchestrator");
}

TEST_F(TelemetryTest, MetricsOnAndOffProduceIdenticalCsv) {
  const Manifest m = small_manifest();

  CampaignOptions off;
  off.jobs = 1;
  off.out_csv = (dir_ / "off.csv").string();
  run_campaign(m, off);

  CampaignOptions on;
  on.jobs = 1;
  on.out_csv = (dir_ / "on.csv").string();
  on.metrics_path = (dir_ / "on.jsonl").string();
  run_campaign(m, on);

  const std::string a = slurp(dir_ / "off.csv");
  const std::string b = slurp(dir_ / "on.csv");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST_F(TelemetryTest, CampaignTelemetryIsScheduleIndependent) {
  const Manifest m = small_manifest();

  CampaignOptions serial;
  serial.jobs = 1;
  serial.out_csv = (dir_ / "serial.csv").string();
  serial.metrics_path = (dir_ / "serial.jsonl").string();
  run_campaign(m, serial);

  CampaignOptions parallel;
  parallel.jobs = 4;
  parallel.out_csv = (dir_ / "parallel.csv").string();
  parallel.metrics_path = (dir_ / "parallel.jsonl").string();
  run_campaign(m, parallel);

  EXPECT_EQ(slurp(dir_ / "serial.csv"), slurp(dir_ / "parallel.csv"));
  // Point rows and the campaign registry trailer are pure functions of the
  // grid, so the whole telemetry file is byte-identical across schedules.
  const std::string a = slurp(dir_ / "serial.jsonl");
  const std::string b = slurp(dir_ / "parallel.jsonl");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  // Every point row carries all three layers' sections.
  const auto rows = parse_lines(dir_ / "serial.jsonl");
  ASSERT_EQ(rows.size(), 7U);  // 6 points + registry trailer
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& row = rows[i];
    EXPECT_EQ(row.at("kind").as_string(), "point");
    EXPECT_GT(row.at("kernel").at("events_dispatched").as_double(), 0.0);
    if (row.at("policy").as_string() != "NS") {
      // A never-sleeping node never wakes; sleeping policies must.
      EXPECT_GT(row.at("protocol").at("wakeups").as_double(), 0.0);
    }
  }
  const auto& trailer = rows[6];
  EXPECT_EQ(trailer.at("kind").as_string(), "registry");
  EXPECT_EQ(trailer.at("scope").as_string(), "campaign");
#if !defined(PAS_OBS_OFF)
  const auto& instruments = trailer.at("instruments");
  EXPECT_DOUBLE_EQ(instruments.at("campaign.points_completed").as_double(),
                   6.0);
  EXPECT_GT(instruments.at("kernel.events_dispatched").as_double(), 0.0);
  EXPECT_GT(instruments.at("policy.PAS.wakeups").as_double(), 0.0);
#endif
}

TEST_F(TelemetryTest, ResumeCompletesTheTelemetryFile) {
  const Manifest m = small_manifest();
  const std::string out = (dir_ / "campaign.csv").string();
  const std::string metrics = (dir_ / "metrics.jsonl").string();

  CampaignOptions options;
  options.jobs = 1;
  options.out_csv = out;
  options.metrics_path = metrics;
  run_campaign(m, options);
  const std::string complete_csv = slurp(out);
  const std::string complete_metrics = slurp(metrics);

  // Drop the even points from both files, as if the campaign had been
  // killed mid-flight with both outputs in the same partial state. CSV data
  // line i and telemetry line i both hold point i (the trailer drops too,
  // which is exactly what a kill before finalize leaves behind).
  const auto keep_odd_points = [](const std::string& text,
                                  const std::string& path, int header_lines) {
    std::istringstream in(text);
    std::ofstream truncated(path, std::ios::trunc);
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
      if (n < header_lines || (n - header_lines) % 2 == 1) {
        truncated << line << '\n';
      }
      ++n;
    }
  };
  keep_odd_points(complete_csv, out, 1);
  keep_odd_points(complete_metrics, metrics, 0);

  options.resume = true;
  run_campaign(m, options);
  EXPECT_EQ(slurp(out), complete_csv);
  // The finalized telemetry file has every point row again. The registry
  // trailer only covers the points computed by the *resuming* invocation,
  // so compare point rows, not trailer bytes.
  const auto rows = parse_lines(metrics);
  std::size_t point_rows = 0;
  for (const auto& row : rows) {
    if (row.at("kind").as_string() == "point") ++point_rows;
  }
  EXPECT_EQ(point_rows, 6U);
}

}  // namespace
}  // namespace pas::exp

// Grid expansion: ordering, determinism, seed derivation, axis application.
#include "exp/grid.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pas::exp {
namespace {

Manifest two_axis_manifest() {
  Manifest m;
  m.seed_base = 42;
  m.replications = 2;
  m.axes = {
      Axis{.kind = AxisKind::kPolicy, .labels = {"NS", "SAS", "PAS"}},
      Axis{.kind = AxisKind::kMaxSleep, .numbers = {5.0, 10.0}},
  };
  return m;
}

TEST(Grid, RowMajorOrderLastAxisFastest) {
  const auto points = expand_grid(two_axis_manifest());
  ASSERT_EQ(points.size(), 6U);
  // (policy, sleep): NS/5, NS/10, SAS/5, SAS/10, PAS/5, PAS/10.
  const std::vector<std::vector<std::size_t>> want = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}};
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].coords, want[i]) << "point " << i;
  }
  EXPECT_EQ(points[0].config.protocol.policy, core::Policy::kNeverSleep);
  EXPECT_DOUBLE_EQ(points[0].config.protocol.sleep.max_s, 5.0);
  EXPECT_EQ(points[5].config.protocol.policy, core::Policy::kPas);
  EXPECT_DOUBLE_EQ(points[5].config.protocol.sleep.max_s, 10.0);
  EXPECT_EQ(points[3].values, (std::vector<std::string>{"SAS", "10"}));
}

TEST(Grid, ExpansionIsDeterministic) {
  const auto a = expand_grid(two_axis_manifest());
  const auto b = expand_grid(two_axis_manifest());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].values, b[i].values);
    EXPECT_EQ(a[i].config.seed, b[i].config.seed);
  }
}

TEST(Grid, PointSeedsAreDistinctAndBaseDependent) {
  std::set<std::uint64_t> seeds;
  for (std::size_t p = 0; p < 10000; ++p) {
    seeds.insert(point_seed(1, p));
  }
  EXPECT_EQ(seeds.size(), 10000U);  // no collisions across a 10k campaign
  EXPECT_NE(point_seed(1, 0), point_seed(2, 0));
  EXPECT_EQ(point_seed(7, 3), point_seed(7, 3));
}

TEST(Grid, AxisFreeManifestIsOnePoint) {
  Manifest m;
  m.seed_base = 5;
  const auto points = expand_grid(m);
  ASSERT_EQ(points.size(), 1U);
  EXPECT_TRUE(points[0].values.empty());
  EXPECT_EQ(points[0].config.seed, point_seed(5, 0));
  EXPECT_EQ(points[0].label(m), "base");
}

TEST(Grid, AppliesEveryAxisKind) {
  Manifest m;
  m.axes = {
      Axis{.kind = AxisKind::kNodeCount, .numbers = {50.0}},
      Axis{.kind = AxisKind::kStimulus, .labels = {"plume"}},
      Axis{.kind = AxisKind::kFailureFraction, .numbers = {0.25}},
      Axis{.kind = AxisKind::kChannelLoss, .numbers = {0.3}},
      Axis{.kind = AxisKind::kAlertThreshold, .numbers = {12.0}},
      Axis{.kind = AxisKind::kDuration, .numbers = {99.0}},
  };
  const auto points = expand_grid(m);
  ASSERT_EQ(points.size(), 1U);
  const auto& cfg = points[0].config;
  EXPECT_EQ(cfg.deployment.count, 50U);
  EXPECT_EQ(cfg.stimulus, world::StimulusKind::kPlume);
  EXPECT_DOUBLE_EQ(cfg.failures.fraction, 0.25);
  // The failure axis defaults the window to the run length as configured at
  // application time (the base's 150 s; the duration axis applies later).
  EXPECT_DOUBLE_EQ(cfg.failures.window_end_s, 150.0);
  EXPECT_EQ(cfg.channel, world::ChannelKind::kBernoulli);
  EXPECT_DOUBLE_EQ(cfg.channel_loss, 0.3);
  EXPECT_DOUBLE_EQ(cfg.protocol.alert_threshold_s, 12.0);
  EXPECT_DOUBLE_EQ(cfg.duration_s, 99.0);

  EXPECT_EQ(points[0].label(m),
            "node_count=50 stimulus=plume failure_fraction=0.25 "
            "channel_loss=0.3 alert_threshold_s=12 duration_s=99");
}

TEST(Grid, AppliesDeploymentRadioRampAndGilbertAxes) {
  Manifest m;
  m.axes = {
      Axis{.kind = AxisKind::kDeployment, .labels = {"poisson-disk"}},
      Axis{.kind = AxisKind::kRadioRange, .numbers = {12.5}},
      Axis{.kind = AxisKind::kSleepRamp, .labels = {"exponential"}},
      Axis{.kind = AxisKind::kGilbertPGoodToBad, .numbers = {0.1}},
  };
  const auto points = expand_grid(m);
  ASSERT_EQ(points.size(), 1U);
  const auto& cfg = points[0].config;
  EXPECT_EQ(cfg.deployment.kind, world::DeploymentKind::kPoissonDisk);
  EXPECT_DOUBLE_EQ(cfg.radio.range_m, 12.5);
  EXPECT_EQ(cfg.protocol.sleep.kind, node::RampKind::kExponential);
  EXPECT_DOUBLE_EQ(cfg.gilbert.p_good_to_bad, 0.1);
  // A Gilbert–Elliott axis implies the bursty channel.
  EXPECT_EQ(cfg.channel, world::ChannelKind::kGilbertElliott);

  EXPECT_EQ(points[0].label(m),
            "deployment=poisson-disk radio_range_m=12.5 "
            "sleep_ramp=exponential ge_p_good_to_bad=0.1");
  EXPECT_EQ(axis_columns(m),
            (std::vector<std::string>{"deployment", "radio_range_m",
                                      "sleep_ramp", "ge_p_good_to_bad"}));
}

TEST(Grid, NewAxesRejectBadValues) {
  // Unknown categorical labels and out-of-range numbers fail at
  // validate() time (manifest load), not mid-campaign.
  Axis deployment{.kind = AxisKind::kDeployment, .labels = {"ring"}};
  EXPECT_THROW(deployment.validate(), std::runtime_error);
  Axis ramp{.kind = AxisKind::kSleepRamp, .labels = {"quadratic"}};
  EXPECT_THROW(ramp.validate(), std::runtime_error);
  Axis range{.kind = AxisKind::kRadioRange, .numbers = {0.0}};
  EXPECT_THROW(range.validate(), std::invalid_argument);
  Axis ge{.kind = AxisKind::kGilbertPGoodToBad, .numbers = {1.5}};
  EXPECT_THROW(ge.validate(), std::invalid_argument);
}

TEST(Grid, ManifestRejectsChannelLossCombinedWithGilbertAxis) {
  // ge_p_good_to_bad switches every point to the Gilbert–Elliott channel,
  // which ignores channel_loss; sweeping both would emit a channel_loss
  // column with no effect on the simulation.
  Manifest m;
  m.axes.push_back(Axis{.kind = AxisKind::kChannelLoss, .numbers = {0.1}});
  m.axes.push_back(
      Axis{.kind = AxisKind::kGilbertPGoodToBad, .numbers = {0.05}});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Grid, NewAxesRoundTripThroughJson) {
  for (const char* spec :
       {R"({"axis": "deployment", "values": ["grid", "uniform"]})",
        R"({"axis": "radio_range_m", "values": [8, 10, 12]})",
        R"({"axis": "sleep_ramp", "values": ["linear", "fixed"]})",
        R"({"axis": "ge_p_good_to_bad", "values": [0.01, 0.05]})"}) {
    const auto axis = Axis::from_json(io::Json::parse(spec));
    const auto back = Axis::from_json(axis.to_json());
    EXPECT_EQ(back.kind, axis.kind) << spec;
    EXPECT_EQ(back.labels, axis.labels) << spec;
    EXPECT_EQ(back.numbers, axis.numbers) << spec;
  }
}

TEST(Grid, PolicyAxisCoversTheWholeRegistry) {
  Manifest m;
  m.axes = {Axis{.kind = AxisKind::kPolicy,
                 .labels = {"NS", "SAS", "PAS", "DutyCycle", "ThresholdHold"}}};
  const auto points = expand_grid(m);
  ASSERT_EQ(points.size(), 5U);
  EXPECT_EQ(points[3].config.protocol.policy, core::Policy::kDutyCycle);
  EXPECT_EQ(points[4].config.protocol.policy, core::Policy::kThresholdHold);
  EXPECT_EQ(points[4].values, (std::vector<std::string>{"ThresholdHold"}));

  Axis bogus{.kind = AxisKind::kPolicy, .labels = {"PAS", "LPL"}};
  EXPECT_THROW(bogus.validate(), std::runtime_error);
}

TEST(Grid, AppliesPerPolicyParameterAxes) {
  Manifest m;
  m.axes = {
      Axis{.kind = AxisKind::kDutyCyclePeriod, .numbers = {2.5}},
      Axis{.kind = AxisKind::kHoldWindow, .numbers = {30.0}},
  };
  const auto points = expand_grid(m);
  ASSERT_EQ(points.size(), 1U);
  EXPECT_DOUBLE_EQ(points[0].config.protocol.duty_cycle.period_s, 2.5);
  EXPECT_DOUBLE_EQ(points[0].config.protocol.threshold_hold.hold_window_s,
                   30.0);
  EXPECT_EQ(points[0].label(m), "duty_cycle_period_s=2.5 hold_window_s=30");
  EXPECT_EQ(axis_columns(m), (std::vector<std::string>{"duty_cycle_period_s",
                                                       "hold_window_s"}));

  Axis period{.kind = AxisKind::kDutyCyclePeriod, .numbers = {0.0}};
  EXPECT_THROW(period.validate(), std::invalid_argument);
  Axis window{.kind = AxisKind::kHoldWindow, .numbers = {-1.0}};
  EXPECT_THROW(window.validate(), std::invalid_argument);

  for (const char* spec :
       {R"({"axis": "duty_cycle_period_s", "values": [2, 5, 10]})",
        R"({"axis": "hold_window_s", "values": [10, 20]})"}) {
    const auto axis = Axis::from_json(io::Json::parse(spec));
    const auto back = Axis::from_json(axis.to_json());
    EXPECT_EQ(back.kind, axis.kind) << spec;
    EXPECT_EQ(back.numbers, axis.numbers) << spec;
  }
}

TEST(Grid, AxisColumnsMatchDeclaredOrder) {
  const auto columns = axis_columns(two_axis_manifest());
  EXPECT_EQ(columns, (std::vector<std::string>{"policy", "max_sleep_s"}));
}

#ifndef NDEBUG
TEST(AxisKindNamesDeathTest, ValueOutsideTheEnumAssertsInDebug) {
  // Axis names are CSV column headers; "?" would poison resume identity.
  EXPECT_DEATH((void)to_string(static_cast<AxisKind>(250)),
               "value outside the enum");
}
#else
TEST(AxisKindNames, ValueOutsideTheEnumFallsBackInRelease) {
  EXPECT_STREQ(to_string(static_cast<AxisKind>(250)), "?");
}
#endif

}  // namespace
}  // namespace pas::exp

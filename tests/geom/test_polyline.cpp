#include "geom/polyline.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pas::geom {
namespace {

Polyline unit_square() {
  Polyline p;
  p.points = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  p.closed = true;
  return p;
}

TEST(PointSegmentDistance, ProjectionCases) {
  // Foot of perpendicular inside the segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({0.5, 1.0}, {0.0, 0.0}, {1.0, 0.0}),
                   1.0);
  // Beyond endpoint a.
  EXPECT_DOUBLE_EQ(point_segment_distance({-3.0, 4.0}, {0.0, 0.0}, {1.0, 0.0}),
                   5.0);
  // Beyond endpoint b.
  EXPECT_DOUBLE_EQ(point_segment_distance({4.0, 4.0}, {0.0, 0.0}, {1.0, 0.0}),
                   5.0);
  // Degenerate zero-length segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({3.0, 4.0}, {0.0, 0.0}, {0.0, 0.0}),
                   5.0);
}

TEST(Polyline, LengthOpenAndClosed) {
  Polyline p;
  p.points = {{0.0, 0.0}, {3.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(p.length(), 7.0);
  p.closed = true;
  EXPECT_DOUBLE_EQ(p.length(), 12.0);
}

TEST(Polyline, LengthDegenerate) {
  Polyline p;
  EXPECT_DOUBLE_EQ(p.length(), 0.0);
  p.points = {{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(p.length(), 0.0);
}

TEST(Polyline, SignedAreaCcwPositive) {
  EXPECT_DOUBLE_EQ(unit_square().signed_area(), 1.0);
  Polyline cw = unit_square();
  std::reverse(cw.points.begin(), cw.points.end());
  EXPECT_DOUBLE_EQ(cw.signed_area(), -1.0);
}

TEST(Polyline, ContainsInsideOutside) {
  const Polyline sq = unit_square();
  EXPECT_TRUE(sq.contains({0.5, 0.5}));
  EXPECT_FALSE(sq.contains({1.5, 0.5}));
  EXPECT_FALSE(sq.contains({-0.1, 0.5}));
}

TEST(Polyline, ContainsConcavePolygon) {
  // An L-shape: the notch must be outside.
  Polyline l;
  l.closed = true;
  l.points = {{0.0, 0.0}, {2.0, 0.0}, {2.0, 1.0},
              {1.0, 1.0}, {1.0, 2.0}, {0.0, 2.0}};
  EXPECT_TRUE(l.contains({0.5, 1.5}));
  EXPECT_TRUE(l.contains({1.5, 0.5}));
  EXPECT_FALSE(l.contains({1.5, 1.5}));  // the notch
}

TEST(Polyline, DistanceTo) {
  const Polyline sq = unit_square();
  EXPECT_DOUBLE_EQ(sq.distance_to({0.5, -1.0}), 1.0);
  EXPECT_DOUBLE_EQ(sq.distance_to({2.0, 0.5}), 1.0);  // uses closing segment? no: right edge
  EXPECT_NEAR(sq.distance_to({0.5, 0.5}), 0.5, 1e-12);
}

TEST(Polyline, DistanceToUsesClosingSegment) {
  Polyline p;
  p.points = {{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  // Query near the left edge, which only exists when closed.
  p.closed = false;
  const double open_dist = p.distance_to({-1.0, 5.0});
  p.closed = true;
  const double closed_dist = p.distance_to({-1.0, 5.0});
  EXPECT_GT(open_dist, closed_dist);
  EXPECT_DOUBLE_EQ(closed_dist, 1.0);
}

}  // namespace
}  // namespace pas::geom

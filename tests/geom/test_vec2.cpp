#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace pas::geom {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
  v /= 4.0;
  EXPECT_EQ(v, Vec2(1.0, 1.5));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 2.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -2.0);
  EXPECT_DOUBLE_EQ(b.cross(a), 2.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, v), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v{3.0, 4.0};
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, AngleMatchesAtan2) {
  EXPECT_NEAR(Vec2(1.0, 0.0).angle(), 0.0, 1e-12);
  EXPECT_NEAR(Vec2(0.0, 1.0).angle(), kPi / 2.0, 1e-12);
  EXPECT_NEAR(Vec2(-1.0, 0.0).angle(), kPi, 1e-12);
}

TEST(Vec2, RotatedQuarterTurn) {
  const Vec2 r = Vec2(1.0, 0.0).rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2.0, -3.0};
  for (double a = 0.0; a < 6.3; a += 0.7) {
    EXPECT_NEAR(v.rotated(a).norm(), v.norm(), 1e-12);
  }
}

TEST(Vec2, FromPolarRoundTrip) {
  const Vec2 v = Vec2::from_polar(2.0, kPi / 6.0);
  EXPECT_NEAR(v.norm(), 2.0, 1e-12);
  EXPECT_NEAR(v.angle(), kPi / 6.0, 1e-12);
}

TEST(Vec2, IncludedAngle) {
  EXPECT_NEAR(included_angle({1.0, 0.0}, {0.0, 1.0}), kPi / 2.0, 1e-12);
  EXPECT_NEAR(included_angle({1.0, 0.0}, {1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(included_angle({1.0, 0.0}, {-1.0, 0.0}), kPi, 1e-12);
  EXPECT_DOUBLE_EQ(included_angle({0.0, 0.0}, {1.0, 0.0}), 0.0);
}

TEST(Vec2, CosIncludedAngle) {
  EXPECT_NEAR(cos_included_angle({1.0, 0.0}, {1.0, 1.0}),
              std::cos(kPi / 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(cos_included_angle({0.0, 0.0}, {1.0, 0.0}), 0.0);
  // Values clamp into [-1, 1] even with rounding.
  EXPECT_LE(cos_included_angle({1e150, 1e150}, {1e150, 1e150}), 1.0);
}

TEST(Vec2, Lerp) {
  const Vec2 a{0.0, 0.0}, b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.25), Vec2(2.5, 5.0));
}

}  // namespace
}  // namespace pas::geom

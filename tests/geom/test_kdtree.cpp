#include "geom/kdtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/aabb.hpp"
#include "sim/rng.hpp"

namespace pas::geom {
namespace {

std::vector<Vec2> random_points(std::size_t n, double extent,
                                std::uint64_t seed) {
  sim::Pcg32 rng(seed, 1);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  }
  return pts;
}

TEST(KdTree, EmptyTree) {
  const KdTree tree({});
  EXPECT_EQ(tree.size(), 0U);
  EXPECT_THROW((void)tree.nearest({0.0, 0.0}), std::logic_error);
  EXPECT_TRUE(tree.knearest({0.0, 0.0}, 3).empty());
  EXPECT_TRUE(tree.query_radius({0.0, 0.0}, 5.0).empty());
}

TEST(KdTree, SinglePoint) {
  const KdTree tree({{2.0, 3.0}});
  EXPECT_EQ(tree.nearest({0.0, 0.0}), 0U);
  EXPECT_EQ(tree.knearest({0.0, 0.0}, 5), std::vector<std::uint32_t>{0});
}

TEST(KdTree, NearestMatchesBruteForce) {
  const auto pts = random_points(500, 100.0, 11);
  const KdTree tree(pts);
  sim::Pcg32 rng(7, 7);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 q{rng.uniform(-10.0, 110.0), rng.uniform(-10.0, 110.0)};
    double best = 1e300;
    std::uint32_t want = 0;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (distance2(pts[i], q) < best) {
        best = distance2(pts[i], q);
        want = i;
      }
    }
    EXPECT_EQ(tree.nearest(q), want);
  }
}

TEST(KdTree, KNearestSortedAndCorrectSize) {
  const auto pts = random_points(200, 50.0, 13);
  const KdTree tree(pts);
  const Vec2 q{25.0, 25.0};
  const auto got = tree.knearest(q, 10);
  ASSERT_EQ(got.size(), 10U);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(distance2(pts[got[i - 1]], q), distance2(pts[got[i]], q));
  }
  // The k-th neighbor distance bounds everything not selected.
  const double kth = distance2(pts[got.back()], q);
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (std::find(got.begin(), got.end(), i) == got.end()) {
      EXPECT_GE(distance2(pts[i], q), kth - 1e-12);
    }
  }
}

TEST(KdTree, KNearestWithKLargerThanSize) {
  const auto pts = random_points(5, 10.0, 17);
  const KdTree tree(pts);
  EXPECT_EQ(tree.knearest({0.0, 0.0}, 50).size(), 5U);
}

TEST(KdTree, RadiusMatchesBruteForce) {
  const auto pts = random_points(300, 60.0, 19);
  const KdTree tree(pts);
  sim::Pcg32 rng(3, 3);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 q{rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)};
    const double r = rng.uniform(1.0, 20.0);
    std::vector<std::uint32_t> want;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (distance(pts[i], q) <= r) want.push_back(i);
    }
    EXPECT_EQ(tree.query_radius(q, r), want);
  }
}

TEST(KdTree, DuplicatePointsAllFound) {
  const std::vector<Vec2> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const KdTree tree(pts);
  EXPECT_EQ(tree.query_radius({1.0, 1.0}, 0.001).size(), 3U);
}

}  // namespace
}  // namespace pas::geom

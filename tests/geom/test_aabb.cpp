#include "geom/aabb.hpp"

#include <gtest/gtest.h>

namespace pas::geom {
namespace {

TEST(Aabb, SquareFactory) {
  const Aabb b = Aabb::square(40.0);
  EXPECT_DOUBLE_EQ(b.width(), 40.0);
  EXPECT_DOUBLE_EQ(b.height(), 40.0);
  EXPECT_DOUBLE_EQ(b.area(), 1600.0);
  EXPECT_EQ(b.center(), Vec2(20.0, 20.0));
}

TEST(Aabb, ContainsBoundaryInclusive) {
  const Aabb b({0.0, 0.0}, {10.0, 5.0});
  EXPECT_TRUE(b.contains({0.0, 0.0}));
  EXPECT_TRUE(b.contains({10.0, 5.0}));
  EXPECT_TRUE(b.contains({5.0, 2.5}));
  EXPECT_FALSE(b.contains({10.1, 2.0}));
  EXPECT_FALSE(b.contains({5.0, -0.1}));
}

TEST(Aabb, ClampProjectsOutsidePoints) {
  const Aabb b({0.0, 0.0}, {10.0, 10.0});
  EXPECT_EQ(b.clamp({-5.0, 5.0}), Vec2(0.0, 5.0));
  EXPECT_EQ(b.clamp({15.0, 12.0}), Vec2(10.0, 10.0));
  EXPECT_EQ(b.clamp({3.0, 4.0}), Vec2(3.0, 4.0));
}

TEST(Aabb, Distance2ZeroInside) {
  const Aabb b({0.0, 0.0}, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(b.distance2({5.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(b.distance2({13.0, 14.0}), 9.0 + 16.0);
}

TEST(Aabb, InflatedGrowsEverySide) {
  const Aabb b({1.0, 1.0}, {2.0, 2.0});
  const Aabb g = b.inflated(0.5);
  EXPECT_EQ(g.lo, Vec2(0.5, 0.5));
  EXPECT_EQ(g.hi, Vec2(2.5, 2.5));
}

TEST(Aabb, Diagonal) {
  const Aabb b({0.0, 0.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(b.diagonal(), 5.0);
}

}  // namespace
}  // namespace pas::geom

#include "geom/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.hpp"

namespace pas::geom {
namespace {

std::vector<Vec2> random_points(std::size_t n, Aabb region, std::uint64_t seed) {
  sim::Pcg32 rng(seed, 1);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(region.lo.x, region.hi.x),
                   rng.uniform(region.lo.y, region.hi.y)});
  }
  return pts;
}

std::vector<std::uint32_t> brute_force_radius(const std::vector<Vec2>& pts,
                                              Vec2 q, double r) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (distance(pts[i], q) <= r) out.push_back(i);
  }
  return out;
}

TEST(GridIndex, RejectsBadCellSize) {
  EXPECT_THROW(GridIndex({{0.0, 0.0}}, Aabb::square(1.0), 0.0),
               std::invalid_argument);
}

TEST(GridIndex, FindsSinglePoint) {
  const std::vector<Vec2> pts{{5.0, 5.0}};
  const GridIndex idx(pts, Aabb::square(10.0), 2.0);
  EXPECT_EQ(idx.query_radius({5.0, 5.0}, 0.1), std::vector<std::uint32_t>{0});
  EXPECT_TRUE(idx.query_radius({0.0, 0.0}, 1.0).empty());
}

TEST(GridIndex, RadiusBoundaryIsInclusive) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {3.0, 0.0}};
  const GridIndex idx(pts, Aabb::square(10.0), 1.0);
  const auto hits = idx.query_radius({0.0, 0.0}, 3.0);
  EXPECT_EQ(hits.size(), 2U);
}

TEST(GridIndex, MatchesBruteForceOnRandomSets) {
  const Aabb region = Aabb::square(50.0);
  const auto pts = random_points(300, region, 77);
  const GridIndex idx(pts, region, 5.0);
  sim::Pcg32 rng(5, 5);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 q{rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)};
    const double r = rng.uniform(0.5, 15.0);
    EXPECT_EQ(idx.query_radius(q, r), brute_force_radius(pts, q, r));
  }
}

TEST(GridIndex, PointsOutsideBoundsAreClampedNotLost) {
  const std::vector<Vec2> pts{{-5.0, -5.0}, {100.0, 100.0}, {5.0, 5.0}};
  const GridIndex idx(pts, Aabb::square(10.0), 2.0);
  // All points remain findable with a big enough radius.
  EXPECT_EQ(idx.query_radius({5.0, 5.0}, 1000.0).size(), 3U);
}

TEST(GridIndex, NegativeRadiusYieldsNothing) {
  const std::vector<Vec2> pts{{1.0, 1.0}};
  const GridIndex idx(pts, Aabb::square(2.0), 1.0);
  EXPECT_TRUE(idx.query_radius({1.0, 1.0}, -1.0).empty());
}

TEST(GridIndex, ForEachVisitsSameSetAsQuery) {
  const Aabb region = Aabb::square(30.0);
  const auto pts = random_points(100, region, 3);
  const GridIndex idx(pts, region, 3.0);
  std::vector<std::uint32_t> visited;
  idx.for_each_in_radius({15.0, 15.0}, 8.0,
                         [&](std::uint32_t id) { visited.push_back(id); });
  std::sort(visited.begin(), visited.end());
  EXPECT_EQ(visited, idx.query_radius({15.0, 15.0}, 8.0));
}

TEST(GridIndex, NearestFindsClosest) {
  const auto pts = random_points(200, Aabb::square(20.0), 9);
  const GridIndex idx(pts, Aabb::square(20.0), 2.0);
  sim::Pcg32 rng(2, 2);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 q{rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0)};
    const std::uint32_t got = idx.nearest(q);
    double best = 1e300;
    std::uint32_t want = 0;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (distance2(pts[i], q) < best) {
        best = distance2(pts[i], q);
        want = i;
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST(GridIndex, NearestOnEmptySetThrows) {
  const GridIndex idx({}, Aabb::square(1.0), 1.0);
  EXPECT_THROW((void)idx.nearest({0.0, 0.0}), std::logic_error);
}

}  // namespace
}  // namespace pas::geom

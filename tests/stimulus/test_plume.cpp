#include "stimulus/plume.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pas::stimulus {
namespace {

GaussianPlumeConfig basic_config() {
  GaussianPlumeConfig cfg;
  cfg.source = {0.0, 0.0};
  cfg.mass = 400.0;
  cfg.diffusivity = 1.0;
  cfg.threshold = 0.05;
  cfg.start_time = 0.0;
  return cfg;
}

TEST(GaussianPlume, RejectsBadConfig) {
  auto cfg = basic_config();
  cfg.mass = 0.0;
  EXPECT_THROW(GaussianPlumeModel{cfg}, std::invalid_argument);
  cfg = basic_config();
  cfg.diffusivity = -1.0;
  EXPECT_THROW(GaussianPlumeModel{cfg}, std::invalid_argument);
  cfg = basic_config();
  cfg.threshold = 0.0;
  EXPECT_THROW(GaussianPlumeModel{cfg}, std::invalid_argument);
}

TEST(GaussianPlume, NothingBeforeRelease) {
  const GaussianPlumeModel model(basic_config());
  EXPECT_DOUBLE_EQ(model.concentration({1.0, 1.0}, 0.0), 0.0);
  EXPECT_FALSE(model.covered({0.0, 0.0}, 0.0));
}

TEST(GaussianPlume, ConcentrationIsGaussianInSpace) {
  const auto cfg = basic_config();
  const GaussianPlumeModel model(cfg);
  const sim::Time t = 5.0;
  const double c0 = model.concentration({0.0, 0.0}, t);
  const double c1 = model.concentration({2.0, 0.0}, t);
  // c(r)/c(0) = exp(−r²/(4Dt)).
  EXPECT_NEAR(c1 / c0, std::exp(-4.0 / (4.0 * cfg.diffusivity * t)), 1e-9);
}

TEST(GaussianPlume, MassConservedAnalytically) {
  // ∫c dA = Q for the Gaussian puff; check by coarse numeric integration.
  const auto cfg = basic_config();
  const GaussianPlumeModel model(cfg);
  const sim::Time t = 4.0;
  double mass = 0.0;
  const double h = 0.5;
  for (double x = -30.0; x < 30.0; x += h) {
    for (double y = -30.0; y < 30.0; y += h) {
      mass += model.concentration({x + h / 2, y + h / 2}, t) * h * h;
    }
  }
  EXPECT_NEAR(mass, cfg.mass, cfg.mass * 0.01);
}

TEST(GaussianPlume, CoveredRadiusGrowsThenShrinks) {
  const GaussianPlumeModel model(basic_config());
  const double early = model.covered_radius(1.0);
  const double mid = model.covered_radius(50.0);
  const sim::Time dissolve = model.dissolve_time();
  const double late = model.covered_radius(dissolve + 1.0);
  EXPECT_GT(mid, early);
  EXPECT_DOUBLE_EQ(late, 0.0);
}

TEST(GaussianPlume, DissolveTimeMatchesPeakThreshold) {
  const auto cfg = basic_config();
  const GaussianPlumeModel model(cfg);
  const sim::Time td = model.dissolve_time();
  // Just before dissolve the center is covered; just after it is not.
  EXPECT_TRUE(model.covered(cfg.source, td - 1.0));
  EXPECT_FALSE(model.covered(cfg.source, td + 1.0));
}

TEST(GaussianPlume, ArrivalTimeFindsGrowthPhaseCrossing) {
  const auto cfg = basic_config();
  const GaussianPlumeModel model(cfg);
  const geom::Vec2 p{5.0, 0.0};
  const sim::Time t = model.arrival_time(p, 1e4);
  ASSERT_LT(t, sim::kNever);
  EXPECT_FALSE(model.covered(p, t - 0.01));
  EXPECT_TRUE(model.covered(p, t + 0.01));
  // The covered radius at arrival equals the point's distance.
  EXPECT_NEAR(model.covered_radius(t), 5.0, 0.05);
}

TEST(GaussianPlume, PointsBeyondMaxRadiusNeverCovered) {
  const auto cfg = basic_config();
  const GaussianPlumeModel model(cfg);
  // Max covered radius over all time is bounded; a far point never covers.
  const geom::Vec2 far{100.0, 0.0};
  EXPECT_EQ(model.arrival_time(far, model.dissolve_time() * 2.0), sim::kNever);
}

TEST(GaussianPlume, WindAdvectsCenter) {
  auto cfg = basic_config();
  cfg.wind = {1.0, 0.0};
  const GaussianPlumeModel model(cfg);
  const sim::Time t = 10.0;
  const double downwind = model.concentration({10.0, 0.0}, t);
  const double at_origin = model.concentration({0.0, 0.0}, t);
  EXPECT_GT(downwind, at_origin);
}

}  // namespace
}  // namespace pas::stimulus

#include "stimulus/advection_diffusion.hpp"

#include <gtest/gtest.h>

namespace pas::stimulus {
namespace {

AdvectionDiffusionConfig small_config() {
  AdvectionDiffusionConfig cfg;
  cfg.region = geom::Aabb::square(20.0);
  cfg.nx = 48;
  cfg.ny = 48;
  cfg.diffusivity = 1.0;
  cfg.source = {10.0, 10.0};
  cfg.source_rate = 60.0;
  cfg.threshold = 0.5;
  cfg.start_time = 0.0;
  cfg.horizon = 60.0;
  return cfg;
}

TEST(AdvectionDiffusion, RejectsBadConfig) {
  auto cfg = small_config();
  cfg.nx = 2;
  EXPECT_THROW(AdvectionDiffusionModel{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.diffusivity = 0.0;
  EXPECT_THROW(AdvectionDiffusionModel{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.threshold = -1.0;
  EXPECT_THROW(AdvectionDiffusionModel{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.horizon = cfg.start_time;
  EXPECT_THROW(AdvectionDiffusionModel{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.source = {100.0, 100.0};
  EXPECT_THROW(AdvectionDiffusionModel{cfg}, std::invalid_argument);
}

TEST(AdvectionDiffusion, StabilityBoundOnTimeStep) {
  const auto cfg = small_config();
  const AdvectionDiffusionModel model(cfg);
  const double dx = cfg.region.width() / cfg.nx;
  EXPECT_LE(model.dt(), dx * dx / (4.0 * cfg.diffusivity));
  EXPECT_GT(model.dt(), 0.0);
}

TEST(AdvectionDiffusion, SourceCellCoversFirst) {
  const auto cfg = small_config();
  const AdvectionDiffusionModel model(cfg);
  const sim::Time at_source = model.arrival_time(cfg.source, cfg.horizon);
  ASSERT_LT(at_source, sim::kNever);
  const sim::Time nearby = model.arrival_time({13.0, 10.0}, cfg.horizon);
  const sim::Time far = model.arrival_time({17.0, 17.0}, cfg.horizon);
  ASSERT_LT(nearby, sim::kNever);
  EXPECT_LT(at_source, nearby);
  if (far < sim::kNever) {
    EXPECT_LT(nearby, far);
  }
}

TEST(AdvectionDiffusion, CoverageIsMonotoneInTime) {
  const auto cfg = small_config();
  const AdvectionDiffusionModel model(cfg);
  const geom::Vec2 p{12.0, 11.0};
  const sim::Time t = model.arrival_time(p, cfg.horizon);
  ASSERT_LT(t, sim::kNever);
  EXPECT_FALSE(model.covered(p, t - 0.5));
  EXPECT_TRUE(model.covered(p, t));
  EXPECT_TRUE(model.covered(p, t + 20.0));  // once covered, stays covered
}

TEST(AdvectionDiffusion, OutsideRegionNeverCovered) {
  const AdvectionDiffusionModel model(small_config());
  EXPECT_FALSE(model.covered({-1.0, 5.0}, 50.0));
  EXPECT_EQ(model.arrival_time({25.0, 5.0}, 50.0), sim::kNever);
}

TEST(AdvectionDiffusion, ConcentrationPeaksAtSource) {
  const auto cfg = small_config();
  const AdvectionDiffusionModel model(cfg);
  const double at_source = model.concentration(cfg.source, 30.0);
  const double off = model.concentration({15.0, 15.0}, 30.0);
  EXPECT_GT(at_source, off);
  EXPECT_GT(at_source, cfg.threshold);
}

TEST(AdvectionDiffusion, MassInjectionBookkeeping) {
  // With zero-flux boundaries all injected mass stays on the grid:
  // mass ≈ source_rate × min(horizon, source_duration).
  auto cfg = small_config();
  cfg.source_duration = 10.0;
  const AdvectionDiffusionModel model(cfg);
  EXPECT_NEAR(model.total_mass_at_horizon(), cfg.source_rate * 10.0,
              cfg.source_rate * 10.0 * 0.05);
}

TEST(AdvectionDiffusion, WindSkewsArrivalDownwind) {
  auto cfg = small_config();
  cfg.wind = {0.25, 0.0};
  const AdvectionDiffusionModel model(cfg);
  const sim::Time downwind = model.arrival_time({14.0, 10.0}, cfg.horizon);
  const sim::Time upwind = model.arrival_time({6.0, 10.0}, cfg.horizon);
  ASSERT_LT(downwind, sim::kNever);
  if (upwind < sim::kNever) {
    EXPECT_LT(downwind, upwind);
  }
}

TEST(AdvectionDiffusion, FrontVelocityPointsOutward) {
  const auto cfg = small_config();
  const AdvectionDiffusionModel model(cfg);
  const geom::Vec2 p{13.0, 10.0};
  const auto v = model.front_velocity(p, 20.0);
  ASSERT_TRUE(v.has_value());
  const geom::Vec2 outward = (p - cfg.source).normalized();
  EXPECT_GT(v->normalized().dot(outward), 0.5);
  // Isotropic diffusion at this radius moves slower than 2 m/s.
  EXPECT_LT(v->norm(), 2.0);
  EXPECT_GT(v->norm(), 0.0);
}

TEST(AdvectionDiffusion, ArrivalRespectsQueryHorizon) {
  const auto cfg = small_config();
  const AdvectionDiffusionModel model(cfg);
  const geom::Vec2 p{12.0, 10.0};
  const sim::Time t = model.arrival_time(p, cfg.horizon);
  ASSERT_LT(t, sim::kNever);
  EXPECT_EQ(model.arrival_time(p, t - 0.1), sim::kNever);
}

}  // namespace
}  // namespace pas::stimulus

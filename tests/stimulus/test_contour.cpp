#include "stimulus/contour.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace pas::stimulus {
namespace {

TEST(MarchingSquares, EmptyForUniformField) {
  const auto segs = extract_iso_segments(
      [](geom::Vec2) { return 0.0; }, geom::Aabb::square(10.0), 16, 16, 0.5);
  EXPECT_TRUE(segs.empty());
}

TEST(MarchingSquares, RejectsDegenerateGrid) {
  EXPECT_THROW(extract_iso_segments([](geom::Vec2) { return 0.0; },
                                    geom::Aabb::square(1.0), 0, 4, 0.5),
               std::invalid_argument);
}

TEST(MarchingSquares, CircleContourPerimeter) {
  // f(p) = -|p - c|: iso at -r is the circle of radius r.
  const geom::Vec2 center{10.0, 10.0};
  const double radius = 5.0;
  const auto segs = extract_iso_segments(
      [&](geom::Vec2 p) { return -geom::distance(p, center); },
      geom::Aabb::square(20.0), 128, 128, -radius);
  ASSERT_FALSE(segs.empty());
  const double perimeter = total_length(segs);
  EXPECT_NEAR(perimeter, 2.0 * std::numbers::pi * radius, 0.15);
}

TEST(MarchingSquares, ContourPointsLieOnIsoLevel) {
  const geom::Vec2 center{10.0, 10.0};
  const auto f = [&](geom::Vec2 p) { return -geom::distance(p, center); };
  const auto segs =
      extract_iso_segments(f, geom::Aabb::square(20.0), 64, 64, -4.0);
  for (const auto& [a, b] : segs) {
    EXPECT_NEAR(f(a), -4.0, 0.15);
    EXPECT_NEAR(f(b), -4.0, 0.15);
  }
}

TEST(MarchingSquares, SaddleCaseEmitsTwoSegments) {
  // f = x·y has a saddle at the origin; a 1-cell grid centred there hits the
  // ambiguous case. Any valid disambiguation yields exactly two segments.
  const auto segs = extract_iso_segments(
      [](geom::Vec2 p) { return p.x * p.y; },
      geom::Aabb{{-1.0, -1.0}, {1.0, 1.0}}, 1, 1, 0.0);
  EXPECT_EQ(segs.size(), 2U);
}

TEST(TotalLength, SumsSegmentLengths) {
  const std::vector<Segment> segs{{{0.0, 0.0}, {3.0, 4.0}},
                                  {{1.0, 1.0}, {1.0, 3.0}}};
  EXPECT_DOUBLE_EQ(total_length(segs), 7.0);
}

TEST(RenderAscii, DimensionsAndRamp) {
  const std::string art = render_ascii(
      [](geom::Vec2 p) { return p.x; }, geom::Aabb::square(10.0), 8, 4, 0.0,
      10.0);
  // 4 rows of 8 chars + newline each.
  EXPECT_EQ(art.size(), 4U * 9U);
  // Ramp position: the left edge renders a lighter glyph than the right,
  // and both map into the ramp alphabet.
  constexpr std::string_view ramp = " .:-=+*#%@";
  ASSERT_NE(ramp.find(art[0]), std::string_view::npos);
  ASSERT_NE(ramp.find(art[7]), std::string_view::npos);
  EXPECT_LT(ramp.find(art[0]), ramp.find(art[7]));
}

TEST(RenderAscii, RejectsBadArgs) {
  EXPECT_THROW(render_ascii([](geom::Vec2) { return 0.0; },
                            geom::Aabb::square(1.0), 0, 4, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(render_ascii([](geom::Vec2) { return 0.0; },
                            geom::Aabb::square(1.0), 4, 4, 1.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pas::stimulus

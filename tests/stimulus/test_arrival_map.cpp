#include "stimulus/arrival_map.hpp"

#include <gtest/gtest.h>

#include "stimulus/radial_front.hpp"

namespace pas::stimulus {
namespace {

RadialFrontModel make_model() {
  RadialFrontConfig cfg;
  cfg.source = {0.0, 0.0};
  cfg.base_speed = 1.0;
  cfg.start_time = 0.0;
  return RadialFrontModel(cfg);
}

TEST(ArrivalMap, ComputesPerNodeArrivals) {
  const auto model = make_model();
  const std::vector<geom::Vec2> nodes{{1.0, 0.0}, {0.0, 2.0}, {3.0, 4.0}};
  const ArrivalMap map(model, nodes, 100.0);
  ASSERT_EQ(map.size(), 3U);
  EXPECT_NEAR(map.at(0), 1.0, 1e-9);
  EXPECT_NEAR(map.at(1), 2.0, 1e-9);
  EXPECT_NEAR(map.at(2), 5.0, 1e-9);
}

TEST(ArrivalMap, HorizonCutsOffFarNodes) {
  const auto model = make_model();
  const std::vector<geom::Vec2> nodes{{1.0, 0.0}, {50.0, 0.0}};
  const ArrivalMap map(model, nodes, 10.0);
  EXPECT_LT(map.at(0), sim::kNever);
  EXPECT_EQ(map.at(1), sim::kNever);
  EXPECT_EQ(map.reached_count(), 1U);
}

TEST(ArrivalMap, CoveredCount) {
  const auto model = make_model();
  const std::vector<geom::Vec2> nodes{{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  const ArrivalMap map(model, nodes, 100.0);
  EXPECT_EQ(map.covered_count(0.5), 0U);
  EXPECT_EQ(map.covered_count(1.0), 1U);
  EXPECT_EQ(map.covered_count(2.5), 2U);
  EXPECT_EQ(map.covered_count(10.0), 3U);
}

TEST(ArrivalMap, FirstAndLastArrival) {
  const auto model = make_model();
  const std::vector<geom::Vec2> nodes{{2.0, 0.0}, {5.0, 0.0}, {90.0, 0.0}};
  const ArrivalMap map(model, nodes, 20.0);
  EXPECT_NEAR(map.first_arrival(), 2.0, 1e-9);
  EXPECT_NEAR(map.last_arrival(), 5.0, 1e-9);  // unreached node excluded
}

TEST(ArrivalMap, EmptyMap) {
  const auto model = make_model();
  const ArrivalMap map(model, {}, 10.0);
  EXPECT_EQ(map.size(), 0U);
  EXPECT_EQ(map.first_arrival(), sim::kNever);
  EXPECT_EQ(map.last_arrival(), sim::kNever);
  EXPECT_EQ(map.covered_count(1e9), 0U);
}

}  // namespace
}  // namespace pas::stimulus

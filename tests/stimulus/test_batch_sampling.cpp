// Batch sampling (sample_many / covered_many / arrival_many) must be
// bit-identical to the scalar calls for every model — the batch paths feed
// ArrivalMap (hence detection scheduling and scoring) and the contour
// renderers, so any drift would silently change results.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "stimulus/advection_diffusion.hpp"
#include "stimulus/composite.hpp"
#include "stimulus/contour.hpp"
#include "stimulus/plume.hpp"
#include "stimulus/radial_front.hpp"

namespace pas::stimulus {
namespace {

std::vector<geom::Vec2> probe_positions(std::size_t n, double extent) {
  sim::Pcg32 rng(99, 5);
  std::vector<geom::Vec2> ps;
  ps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Include points outside the field too (negative coordinates).
    ps.push_back({rng.uniform(-0.2 * extent, extent),
                  rng.uniform(-0.2 * extent, extent)});
  }
  return ps;
}

void expect_batches_match_scalar(const StimulusModel& model,
                                 const std::vector<geom::Vec2>& ps,
                                 sim::Time t, sim::Time horizon) {
  std::vector<double> conc(ps.size());
  model.sample_many(ps, t, conc);
  std::vector<std::uint8_t> cov(ps.size());
  model.covered_many(ps, t, cov);
  std::vector<sim::Time> arr(ps.size());
  model.arrival_many(ps, horizon, arr);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(conc[i], model.concentration(ps[i], t)) << "point " << i;
    EXPECT_EQ(cov[i] != 0, model.covered(ps[i], t)) << "point " << i;
    EXPECT_EQ(arr[i], model.arrival_time(ps[i], horizon)) << "point " << i;
  }
}

TEST(BatchSampling, RadialMatchesScalar) {
  RadialFrontConfig cfg;
  cfg.source = {5.0, 5.0};
  cfg.base_speed = 0.5;
  cfg.start_time = 2.0;
  cfg.harmonics = {{.k = 2, .amplitude = 0.2, .phase = 0.4}};
  const RadialFrontModel model(cfg);
  const auto ps = probe_positions(64, 40.0);
  expect_batches_match_scalar(model, ps, 30.0, 150.0);
}

TEST(BatchSampling, PlumeMatchesScalar) {
  GaussianPlumeConfig cfg;
  cfg.source = {10.0, 10.0};
  cfg.mass = 500.0;
  cfg.diffusivity = 1.2;
  cfg.wind = {0.05, -0.02};
  cfg.threshold = 0.2;
  cfg.start_time = 1.0;
  const GaussianPlumeModel model(cfg);
  const auto ps = probe_positions(64, 40.0);
  expect_batches_match_scalar(model, ps, 25.0, 150.0);
  // Pre-release time exercises the tau <= 0 early-out.
  expect_batches_match_scalar(model, ps, 0.5, 150.0);
}

TEST(BatchSampling, AdvectionDiffusionMatchesScalar) {
  AdvectionDiffusionConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.horizon = 60.0;
  cfg.region = geom::Aabb::square(40.0);
  cfg.source = {4.0, 4.0};
  const AdvectionDiffusionModel model(cfg);
  const auto ps = probe_positions(64, 40.0);
  expect_batches_match_scalar(model, ps, 30.0, 60.0);
}

TEST(BatchSampling, CompositeMatchesScalar) {
  RadialFrontConfig a;
  a.source = {2.0, 2.0};
  a.base_speed = 0.5;
  RadialFrontConfig b;
  b.source = {35.0, 35.0};
  b.base_speed = 0.3;
  b.start_time = 10.0;
  std::vector<std::unique_ptr<StimulusModel>> parts;
  parts.push_back(std::make_unique<RadialFrontModel>(a));
  parts.push_back(std::make_unique<RadialFrontModel>(b));
  const CompositeModel model(std::move(parts));
  const auto ps = probe_positions(64, 40.0);
  expect_batches_match_scalar(model, ps, 40.0, 150.0);
}

TEST(BatchSampling, ContourModelOverloadsMatchCallbackOverloads) {
  GaussianPlumeConfig cfg;
  cfg.source = {20.0, 20.0};
  cfg.mass = 800.0;
  cfg.diffusivity = 1.0;
  cfg.threshold = 0.3;
  const GaussianPlumeModel model(cfg);
  const auto region = geom::Aabb::square(40.0);
  const sim::Time t = 20.0;
  const auto f = [&](geom::Vec2 p) { return model.concentration(p, t); };

  const auto segs_fn = extract_iso_segments(f, region, 48, 48, cfg.threshold);
  const auto segs_model =
      extract_iso_segments(model, t, region, 48, 48, cfg.threshold);
  ASSERT_EQ(segs_fn.size(), segs_model.size());
  ASSERT_FALSE(segs_model.empty());
  for (std::size_t i = 0; i < segs_fn.size(); ++i) {
    EXPECT_EQ(segs_fn[i].first, segs_model[i].first);
    EXPECT_EQ(segs_fn[i].second, segs_model[i].second);
  }

  EXPECT_EQ(render_ascii(f, region, 40, 20, 0.0, 1.0),
            render_ascii(model, t, region, 40, 20, 0.0, 1.0));
}

}  // namespace
}  // namespace pas::stimulus

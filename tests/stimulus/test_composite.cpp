#include "stimulus/composite.hpp"

#include <gtest/gtest.h>

#include "stimulus/plume.hpp"
#include "stimulus/radial_front.hpp"

namespace pas::stimulus {
namespace {

std::unique_ptr<RadialFrontModel> radial_at(geom::Vec2 src, double speed,
                                            sim::Time start = 0.0) {
  RadialFrontConfig cfg;
  cfg.source = src;
  cfg.base_speed = speed;
  cfg.start_time = start;
  return std::make_unique<RadialFrontModel>(cfg);
}

TEST(Composite, RejectsEmptyAndNull) {
  EXPECT_THROW(CompositeModel{{}}, std::invalid_argument);
  std::vector<std::unique_ptr<StimulusModel>> parts;
  parts.push_back(nullptr);
  EXPECT_THROW(CompositeModel{std::move(parts)}, std::invalid_argument);
}

TEST(Composite, CoveredIsUnion) {
  std::vector<std::unique_ptr<StimulusModel>> parts;
  parts.push_back(radial_at({0.0, 0.0}, 1.0));
  parts.push_back(radial_at({100.0, 0.0}, 1.0));
  const CompositeModel model(std::move(parts));
  EXPECT_TRUE(model.covered({2.0, 0.0}, 5.0));    // near source A
  EXPECT_TRUE(model.covered({98.0, 0.0}, 5.0));   // near source B
  EXPECT_FALSE(model.covered({50.0, 0.0}, 5.0));  // between, too early
  EXPECT_TRUE(model.covered({50.0, 0.0}, 51.0));
}

TEST(Composite, ArrivalIsEarliestPart) {
  std::vector<std::unique_ptr<StimulusModel>> parts;
  parts.push_back(radial_at({0.0, 0.0}, 1.0));          // reaches x=30 at t=30
  parts.push_back(radial_at({40.0, 0.0}, 1.0, 5.0));    // reaches x=30 at t=15
  const CompositeModel model(std::move(parts));
  EXPECT_NEAR(model.arrival_time({30.0, 0.0}, 1e9), 15.0, 1e-9);
  EXPECT_NEAR(model.arrival_time({5.0, 0.0}, 1e9), 5.0, 1e-9);
}

TEST(Composite, ConcentrationsAdd) {
  std::vector<std::unique_ptr<StimulusModel>> parts;
  GaussianPlumeConfig p;
  p.source = {0.0, 0.0};
  p.mass = 100.0;
  parts.push_back(std::make_unique<GaussianPlumeModel>(p));
  parts.push_back(std::make_unique<GaussianPlumeModel>(p));  // identical twin
  const CompositeModel model(std::move(parts));
  const GaussianPlumeModel single(p);
  EXPECT_DOUBLE_EQ(model.concentration({1.0, 1.0}, 3.0),
                   2.0 * single.concentration({1.0, 1.0}, 3.0));
}

TEST(Composite, FrontVelocityFromFirstArrivingPart) {
  std::vector<std::unique_ptr<StimulusModel>> parts;
  parts.push_back(radial_at({0.0, 0.0}, 1.0));
  parts.push_back(radial_at({40.0, 0.0}, 2.0));
  const CompositeModel model(std::move(parts));
  // Point at x=30: part B (speed 2, distance 10) arrives at t=5, first.
  const auto v = model.front_velocity({30.0, 0.0}, 5.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_LT(v->x, 0.0);  // part B spreads in -x toward this point
  EXPECT_NEAR(v->norm(), 2.0, 1e-9);
}

TEST(Composite, PartAccess) {
  std::vector<std::unique_ptr<StimulusModel>> parts;
  parts.push_back(radial_at({1.0, 2.0}, 1.0));
  const CompositeModel model(std::move(parts));
  EXPECT_EQ(model.part_count(), 1U);
  EXPECT_EQ(model.part(0).name(), "radial");
  EXPECT_EQ(model.source(), geom::Vec2(1.0, 2.0));
  EXPECT_EQ(model.name(), "composite");
}

TEST(Composite, CoverageConsistentWithArrival) {
  std::vector<std::unique_ptr<StimulusModel>> parts;
  parts.push_back(radial_at({0.0, 0.0}, 0.7));
  parts.push_back(radial_at({30.0, 10.0}, 0.4, 10.0));
  const CompositeModel model(std::move(parts));
  for (const geom::Vec2 p : {geom::Vec2{5.0, 5.0}, geom::Vec2{25.0, 8.0},
                             geom::Vec2{15.0, 2.0}}) {
    const sim::Time t = model.arrival_time(p, 1e9);
    ASSERT_LT(t, sim::kNever);
    EXPECT_FALSE(model.covered(p, t - 1e-6));
    EXPECT_TRUE(model.covered(p, t + 1e-6));
  }
}

}  // namespace
}  // namespace pas::stimulus

#include "stimulus/radial_front.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace pas::stimulus {
namespace {

RadialFrontConfig basic_config() {
  RadialFrontConfig cfg;
  cfg.source = {0.0, 0.0};
  cfg.base_speed = 0.5;
  cfg.start_time = 10.0;
  return cfg;
}

TEST(RadialFront, RejectsBadConfig) {
  RadialFrontConfig cfg = basic_config();
  cfg.base_speed = 0.0;
  EXPECT_THROW(RadialFrontModel{cfg}, std::invalid_argument);
  cfg = basic_config();
  cfg.accel = -1.0;
  EXPECT_THROW(RadialFrontModel{cfg}, std::invalid_argument);
  cfg = basic_config();
  cfg.max_radius = 0.0;
  EXPECT_THROW(RadialFrontModel{cfg}, std::invalid_argument);
  cfg = basic_config();
  cfg.harmonics = {{.k = 1, .amplitude = 0.5, .phase = 0.0},
                   {.k = 2, .amplitude = 0.5, .phase = 0.0}};
  EXPECT_THROW(RadialFrontModel{cfg}, std::invalid_argument);
}

TEST(RadialFront, NothingCoveredBeforeStart) {
  const RadialFrontModel model(basic_config());
  EXPECT_FALSE(model.covered({0.1, 0.0}, 9.9));
  EXPECT_FALSE(model.covered({0.0, 0.0}, 9.9));
  EXPECT_TRUE(model.covered({0.0, 0.0}, 10.0));  // source at start time
}

TEST(RadialFront, IsotropicArrivalMatchesDistanceOverSpeed) {
  const RadialFrontModel model(basic_config());
  // Point 5 m out at 0.5 m/s: arrival = start + 10 s.
  const geom::Vec2 p{3.0, 4.0};
  EXPECT_NEAR(model.arrival_time(p, 1e9), 20.0, 1e-9);
  EXPECT_FALSE(model.covered(p, 19.99));
  EXPECT_TRUE(model.covered(p, 20.01));
}

TEST(RadialFront, ArrivalBeyondHorizonIsNever) {
  const RadialFrontModel model(basic_config());
  EXPECT_EQ(model.arrival_time({3.0, 4.0}, 19.0), sim::kNever);
}

TEST(RadialFront, MaxRadiusStopsGrowth) {
  RadialFrontConfig cfg = basic_config();
  cfg.max_radius = 4.0;
  const RadialFrontModel model(cfg);
  EXPECT_EQ(model.arrival_time({3.0, 4.0}, 1e9), sim::kNever);
  EXPECT_FALSE(model.covered({3.0, 4.0}, 1e8));
  EXPECT_TRUE(model.covered({2.0, 0.0}, 1e3));
}

TEST(RadialFront, AccelerationShortensLaterArrivals) {
  RadialFrontConfig slow = basic_config();
  RadialFrontConfig accel = basic_config();
  accel.accel = 0.2;
  const RadialFrontModel m0(slow), m1(accel);
  const geom::Vec2 p{8.0, 0.0};
  EXPECT_LT(m1.arrival_time(p, 1e9), m0.arrival_time(p, 1e9));
}

TEST(RadialFront, AcceleratedArrivalInvertsGrowthExactly) {
  RadialFrontConfig cfg = basic_config();
  cfg.accel = 0.3;
  const RadialFrontModel model(cfg);
  const geom::Vec2 p{6.0, 2.5};
  const sim::Time t = model.arrival_time(p, 1e9);
  // At the computed arrival time the radius equals the point's distance.
  const double r = (p - cfg.source).norm();
  EXPECT_NEAR(model.radius_at((p - cfg.source).angle(), t), r, 1e-6);
}

TEST(RadialFront, AnisotropicSpeedProfile) {
  RadialFrontConfig cfg = basic_config();
  cfg.harmonics = {{.k = 1, .amplitude = 0.4, .phase = 0.0}};
  const RadialFrontModel model(cfg);
  // v(0) = 0.5·1.4, v(pi) = 0.5·0.6.
  EXPECT_NEAR(model.speed_at(0.0), 0.7, 1e-12);
  EXPECT_NEAR(model.speed_at(std::numbers::pi), 0.3, 1e-9);
  // Same distance, different directions => different arrivals.
  const sim::Time east = model.arrival_time({5.0, 0.0}, 1e9);
  const sim::Time west = model.arrival_time({-5.0, 0.0}, 1e9);
  EXPECT_LT(east, west);
}

TEST(RadialFront, SpeedProfileStaysPositive) {
  RadialFrontConfig cfg = basic_config();
  cfg.harmonics = {{.k = 2, .amplitude = 0.45, .phase = 1.0},
                   {.k = 5, .amplitude = 0.40, .phase = 2.0}};
  const RadialFrontModel model(cfg);
  for (int i = 0; i < 720; ++i) {
    const double theta = i * std::numbers::pi / 360.0;
    EXPECT_GT(model.speed_at(theta), 0.0) << "theta=" << theta;
  }
}

TEST(RadialFront, FrontVelocityIsRadialWithProfileSpeed) {
  RadialFrontConfig cfg = basic_config();
  cfg.harmonics = {{.k = 3, .amplitude = 0.2, .phase = 0.5}};
  const RadialFrontModel model(cfg);
  const geom::Vec2 p{4.0, 3.0};
  const auto v = model.front_velocity(p, 30.0);
  ASSERT_TRUE(v.has_value());
  const geom::Vec2 dir = (p - cfg.source).normalized();
  EXPECT_NEAR(v->normalized().dot(dir), 1.0, 1e-12);
  EXPECT_NEAR(v->norm(), model.speed_at((p - cfg.source).angle()), 1e-12);
}

TEST(RadialFront, ConcentrationDecreasesOutward) {
  const RadialFrontModel model(basic_config());
  const sim::Time t = 40.0;  // radius 15 m
  const double near = model.concentration({1.0, 0.0}, t);
  const double mid = model.concentration({7.0, 0.0}, t);
  const double outside = model.concentration({20.0, 0.0}, t);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, 0.0);
  EXPECT_DOUBLE_EQ(outside, 0.0);
}

TEST(RadialFront, BoundaryPolylineMatchesRadius) {
  const RadialFrontModel model(basic_config());
  const geom::Polyline b = model.boundary(30.0, 64);
  ASSERT_EQ(b.size(), 64U);
  EXPECT_TRUE(b.closed);
  for (const auto& p : b.points) {
    const double r = (p - model.source()).norm();
    EXPECT_NEAR(r, 0.5 * 20.0, 1e-9);
  }
}

TEST(RadialFront, BoundaryAreaGrowsMonotonically) {
  RadialFrontConfig cfg = basic_config();
  cfg.harmonics = {{.k = 2, .amplitude = 0.3, .phase = 0.0}};
  const RadialFrontModel model(cfg);
  double prev = 0.0;
  for (sim::Time t = 12.0; t <= 60.0; t += 6.0) {
    const double area = std::abs(model.boundary(t, 128).signed_area());
    EXPECT_GT(area, prev);
    prev = area;
  }
}

// Property sweep: arrival_time() and covered() must agree for any direction,
// distance and acceleration.
struct RadialCase {
  double angle_deg;
  double distance;
  double accel;
};

class RadialFrontProperty : public ::testing::TestWithParam<RadialCase> {};

TEST_P(RadialFrontProperty, CoverageConsistentWithArrival) {
  const RadialCase c = GetParam();
  RadialFrontConfig cfg = basic_config();
  cfg.accel = c.accel;
  cfg.harmonics = {{.k = 1, .amplitude = 0.25, .phase = 0.3},
                   {.k = 4, .amplitude = 0.15, .phase = 1.2}};
  const RadialFrontModel model(cfg);
  const double theta = c.angle_deg * std::numbers::pi / 180.0;
  const geom::Vec2 p = cfg.source + geom::Vec2::from_polar(c.distance, theta);

  const sim::Time t = model.arrival_time(p, 1e9);
  ASSERT_LT(t, sim::kNever);
  EXPECT_FALSE(model.covered(p, t - 1e-6));
  EXPECT_TRUE(model.covered(p, t + 1e-6));
  // Arrival is never before release.
  EXPECT_GE(t, cfg.start_time);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadialFrontProperty,
    ::testing::Values(RadialCase{0.0, 1.0, 0.0}, RadialCase{45.0, 5.0, 0.0},
                      RadialCase{90.0, 10.0, 0.1}, RadialCase{135.0, 2.5, 0.0},
                      RadialCase{180.0, 7.0, 0.3}, RadialCase{225.0, 12.0, 0.0},
                      RadialCase{270.0, 0.5, 0.5}, RadialCase{315.0, 20.0, 0.05},
                      RadialCase{10.0, 15.0, 0.2}, RadialCase{200.0, 30.0, 0.0}));

}  // namespace
}  // namespace pas::stimulus

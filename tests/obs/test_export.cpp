#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace pas::obs {
namespace {

TEST(HistogramJson, CarriesSpecBinsAndTotal) {
  HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  h.record(1.5);
  h.record(3.0);
  h.record(3.5);

  const io::Json j = histogram_json(h);
  EXPECT_DOUBLE_EQ(j.at("lo").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(j.at("count").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(j.at("total").as_double(), 3.0);
  const auto& bins = j.at("bins").as_array();
  ASSERT_EQ(bins.size(), 6U);
  EXPECT_DOUBLE_EQ(bins[1].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(bins[2].as_double(), 2.0);

  // Never-recorded histogram: empty bins, zero total.
  const io::Json empty = histogram_json(HistogramData{LogBuckets{1.0, 4}, {}, 0});
  EXPECT_TRUE(empty.at("bins").as_array().empty());
  EXPECT_DOUBLE_EQ(empty.at("total").as_double(), 0.0);
}

TEST(HistogramJson, QuantileKeysOnlyWhenRecorded) {
  HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  for (int i = 0; i < 4; ++i) h.record(3.0);

  const io::Json j = histogram_json(h);
  ASSERT_TRUE(j.contains("p50"));
  ASSERT_TRUE(j.contains("p95"));
  ASSERT_TRUE(j.contains("p99"));
  EXPECT_DOUBLE_EQ(j.at("p50").as_double(), quantile(h, 0.50));
  EXPECT_DOUBLE_EQ(j.at("p95").as_double(), quantile(h, 0.95));
  EXPECT_DOUBLE_EQ(j.at("p99").as_double(), quantile(h, 0.99));
  EXPECT_LE(j.at("p50").as_double(), j.at("p95").as_double());
  EXPECT_LE(j.at("p95").as_double(), j.at("p99").as_double());

  // A histogram that never recorded carries no quantile keys at all —
  // absent, not null or zero, so consumers can't misread "no data" as 0.
  const io::Json empty =
      histogram_json(HistogramData{LogBuckets{1.0, 4}, {}, 0});
  EXPECT_FALSE(empty.contains("p50"));
  EXPECT_FALSE(empty.contains("p95"));
  EXPECT_FALSE(empty.contains("p99"));
}

TEST(SnapshotDelta, CountersSubtractGaugesPassThrough) {
  Snapshot prev;
  prev.scalars.push_back({"kernel.events", InstrumentKind::kCounter, 10});
  prev.scalars.push_back({"kernel.max_pending", InstrumentKind::kGauge, 7});
  Snapshot cur;
  cur.scalars.push_back({"kernel.events", InstrumentKind::kCounter, 25});
  cur.scalars.push_back({"kernel.max_pending", InstrumentKind::kGauge, 5});
  cur.scalars.push_back({"orch.leases", InstrumentKind::kCounter, 3});

  const Snapshot delta = snapshot_delta(prev, cur);
  ASSERT_EQ(delta.scalars.size(), 3U);
  EXPECT_EQ(delta.scalars[0].value, 15U);  // counter: cur - prev
  EXPECT_EQ(delta.scalars[1].value, 5U);   // gauge: current high-water mark
  EXPECT_EQ(delta.scalars[2].value, 3U);   // new instrument: full value
}

TEST(SnapshotDelta, HistogramBinsSubtract) {
  Snapshot prev;
  {
    Snapshot::Hist h;
    h.name = "sleep_s";
    h.data.spec = LogBuckets{1.0, 4};
    h.data.record(3.0);
    prev.hists.push_back(std::move(h));
  }
  Snapshot cur;
  {
    Snapshot::Hist h;
    h.name = "sleep_s";
    h.data.spec = LogBuckets{1.0, 4};
    h.data.record(3.0);
    h.data.record(3.5);
    h.data.record(12.0);
    cur.hists.push_back(std::move(h));
  }

  const Snapshot delta = snapshot_delta(prev, cur);
  ASSERT_EQ(delta.hists.size(), 1U);
  EXPECT_EQ(delta.hists[0].data.count, 2U);
  EXPECT_EQ(delta.hists[0].data.bin_counts[2], 1U);  // one new in (2, 4]
  EXPECT_EQ(delta.hists[0].data.bin_counts[4], 1U);  // one new in (8, 16]
}

TEST(SnapshotDeltaJson, OmitsUnchangedInstruments) {
  Snapshot prev;
  prev.scalars.push_back({"kernel.events", InstrumentKind::kCounter, 10});
  prev.scalars.push_back({"orch.respawns", InstrumentKind::kCounter, 2});
  Snapshot cur;
  cur.scalars.push_back({"kernel.events", InstrumentKind::kCounter, 10});
  cur.scalars.push_back({"orch.respawns", InstrumentKind::kCounter, 4});
  {
    Snapshot::Hist h;  // histogram with no new samples since prev
    h.name = "sleep_s";
    h.data.spec = LogBuckets{1.0, 4};
    h.data.record(3.0);
    prev.hists.push_back(h);
    cur.hists.push_back(std::move(h));
  }

  const io::Json j = snapshot_delta_json(prev, cur);
  EXPECT_FALSE(j.contains("kernel.events"));  // unchanged counter dropped
  EXPECT_FALSE(j.contains("sleep_s"));        // quiet histogram dropped
  ASSERT_TRUE(j.contains("orch.respawns"));
  EXPECT_DOUBLE_EQ(j.at("orch.respawns").as_double(), 2.0);
}

TEST(SnapshotJson, MapsNamesToValues) {
  Snapshot snap;
  snap.scalars.push_back({"kernel.events", InstrumentKind::kCounter, 42});
  snap.scalars.push_back({"kernel.max_pending", InstrumentKind::kGauge, 7});
  Snapshot::Hist hist;
  hist.name = "policy.PAS.sleep_s";
  hist.data.spec = LogBuckets{0.25, 12};
  hist.data.record(2.0);
  snap.hists.push_back(std::move(hist));

  const io::Json j = snapshot_json(snap);
  EXPECT_DOUBLE_EQ(j.at("kernel.events").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(j.at("kernel.max_pending").as_double(), 7.0);
  EXPECT_TRUE(j.at("policy.PAS.sleep_s").is_object());
  EXPECT_DOUBLE_EQ(j.at("policy.PAS.sleep_s").at("total").as_double(), 1.0);

  // dump() round-trips and is deterministic (sorted keys).
  const std::string text = j.dump();
  EXPECT_EQ(io::Json::parse(text).dump(), text);
}

TEST(WriteTraceJsonl, OneParsableLinePerEvent) {
  sim::TraceLog log;
  log.enable();
  {
    sim::TraceEvent e;
    e.time = 1.25;
    e.category = sim::TraceCategory::kSleep;
    e.kind = sim::TraceKind::kSleepFor;
    e.node = 3;
    e.x = 10.0;
    log.record(e);
  }
  {
    sim::TraceEvent e;
    e.time = 2.5;
    e.category = sim::TraceCategory::kState;
    e.kind = sim::TraceKind::kStateChange;
    e.node = 4;
    e.s1 = "safe";
    e.s2 = "alert";
    log.record(e);
  }
  log.record(3.0, sim::TraceCategory::kMessage, 5, sim::TraceKind::kRequest);

  std::ostringstream out;
  EXPECT_EQ(write_trace_jsonl(log, out), 3U);

  std::istringstream in(out.str());
  std::vector<io::Json> rows;
  std::string line;
  while (std::getline(in, line)) rows.push_back(io::Json::parse(line));
  ASSERT_EQ(rows.size(), 3U);

  EXPECT_DOUBLE_EQ(rows[0].at("t").as_double(), 1.25);
  EXPECT_EQ(rows[0].at("cat").as_string(), "sleep");
  EXPECT_EQ(rows[0].at("kind").as_string(), "sleep_for");
  EXPECT_DOUBLE_EQ(rows[0].at("node").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(rows[0].at("x").as_double(), 10.0);
  EXPECT_EQ(rows[0].at("text").as_string(), "sleeping for 10s");

  EXPECT_EQ(rows[1].at("kind").as_string(), "state_change");
  EXPECT_EQ(rows[1].at("from").as_string(), "safe");
  EXPECT_EQ(rows[1].at("to").as_string(), "alert");

  // Kinds without numeric args omit them.
  EXPECT_EQ(rows[2].at("kind").as_string(), "request");
  EXPECT_FALSE(rows[2].contains("x"));
}

}  // namespace
}  // namespace pas::obs

#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pas::obs {
namespace {

TEST(LogBuckets, BinLayout) {
  const LogBuckets spec{1.0, 4};
  EXPECT_EQ(spec.bins(), 6U);  // underflow + 4 + overflow

  // Underflow: <= lo, negatives, NaN.
  EXPECT_EQ(spec.index(0.5), 0U);
  EXPECT_EQ(spec.index(1.0), 0U);  // lo itself is the underflow edge
  EXPECT_EQ(spec.index(-3.0), 0U);
  EXPECT_EQ(spec.index(std::numeric_limits<double>::quiet_NaN()), 0U);

  // Doubling buckets (1,2], (2,4], (4,8], (8,16].
  EXPECT_EQ(spec.index(1.5), 1U);
  EXPECT_EQ(spec.index(3.0), 2U);
  EXPECT_EQ(spec.index(5.0), 3U);
  EXPECT_EQ(spec.index(16.0), 4U);

  // Overflow: beyond lo * 2^count.
  EXPECT_EQ(spec.index(16.0001), 5U);
  EXPECT_EQ(spec.index(std::numeric_limits<double>::infinity()), 5U);
}

TEST(LogBuckets, UpperEdgesAreInclusive) {
  const LogBuckets spec{0.25, 12};
  for (std::size_t i = 1; i <= spec.count; ++i) {
    const double edge = spec.upper_edge(i);
    EXPECT_EQ(spec.index(edge), i) << "edge " << edge;
    // Just above an edge falls into the next bin.
    EXPECT_EQ(spec.index(std::nextafter(
                  edge, std::numeric_limits<double>::infinity())),
              i + 1)
        << "edge " << edge;
  }
  EXPECT_EQ(spec.upper_edge(0), 0.25);
  EXPECT_TRUE(std::isinf(spec.upper_edge(spec.count + 1)));
}

TEST(HistogramData, LazyAllocationAndCounts) {
  HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  EXPECT_TRUE(h.bin_counts.empty());
  EXPECT_EQ(h.count, 0U);

  h.record(3.0);
  h.record(3.5);
  h.record(100.0);
  ASSERT_EQ(h.bin_counts.size(), h.spec.bins());
  EXPECT_EQ(h.count, 3U);
  EXPECT_EQ(h.bin_counts[2], 2U);  // (2, 4]
  EXPECT_EQ(h.bin_counts[5], 1U);  // overflow
}

TEST(HistogramData, MergeSumsBinByBin) {
  const LogBuckets spec{1.0, 4};
  HistogramData a{spec, {}, 0};
  HistogramData b{spec, {}, 0};
  a.record(1.5);
  b.record(1.7);
  b.record(12.0);

  a.merge(b);
  EXPECT_EQ(a.count, 3U);
  EXPECT_EQ(a.bin_counts[1], 2U);
  EXPECT_EQ(a.bin_counts[4], 1U);

  // Merging an empty histogram is a no-op and never allocates.
  HistogramData empty{spec, {}, 0};
  HistogramData target{spec, {}, 0};
  target.merge(empty);
  EXPECT_TRUE(target.bin_counts.empty());
  EXPECT_EQ(target.count, 0U);
}

TEST(Quantile, EmptyHistogramReportsZero) {
  const HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  EXPECT_DOUBLE_EQ(quantile(h, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile(h, 0.99), 0.0);
}

TEST(Quantile, InterpolatesWithinABucket) {
  // All mass in (2, 4]: the quantile walks linearly across that bucket.
  HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  for (int i = 0; i < 4; ++i) h.record(3.0);
  EXPECT_DOUBLE_EQ(quantile(h, 0.0), 2.0);   // bucket lower edge
  EXPECT_DOUBLE_EQ(quantile(h, 0.5), 3.0);   // halfway across
  EXPECT_DOUBLE_EQ(quantile(h, 1.0), 4.0);   // bucket upper edge
}

TEST(Quantile, UnderflowBucketInterpolatesFromZero) {
  // Durations are non-negative, so the underflow bucket spans [0, lo].
  HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  h.record(0.5);
  h.record(0.5);
  EXPECT_DOUBLE_EQ(quantile(h, 0.5), 0.5);
}

TEST(Quantile, OverflowBucketReportsItsLowerEdge) {
  // The unbounded top bucket under-estimates instead of extrapolating.
  HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  h.record(100.0);
  EXPECT_DOUBLE_EQ(quantile(h, 0.5), 16.0);
  EXPECT_DOUBLE_EQ(quantile(h, 1.0), 16.0);
}

TEST(Quantile, WalksAcrossBucketsAndStaysMonotonic) {
  HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  h.record(1.5);  // (1, 2]
  h.record(3.0);  // (2, 4]
  h.record(5.0);  // (4, 8]
  h.record(6.0);  // (4, 8]
  // target(0.5) = 2 ranks: one in bin 1, the second exhausts bin 2.
  EXPECT_DOUBLE_EQ(quantile(h, 0.5), 4.0);
  // target(0.99) = 3.96 ranks: 1.96 of bin 3's two counts -> frac 0.98.
  EXPECT_DOUBLE_EQ(quantile(h, 0.99), 4.0 + 0.98 * 4.0);

  const double p50 = quantile(h, 0.50);
  const double p95 = quantile(h, 0.95);
  const double p99 = quantile(h, 0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  HistogramData h{LogBuckets{1.0, 4}, {}, 0};
  h.record(3.0);
  EXPECT_DOUBLE_EQ(quantile(h, -0.5), quantile(h, 0.0));
  EXPECT_DOUBLE_EQ(quantile(h, 2.0), quantile(h, 1.0));
  EXPECT_DOUBLE_EQ(quantile(h, std::numeric_limits<double>::quiet_NaN()),
                   quantile(h, 0.0));
}

}  // namespace
}  // namespace pas::obs

#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace pas::obs {
namespace {

// These tests exercise the enabled-registry bookkeeping, which PAS_OBS_OFF
// compiles away by design; nothing to verify in that configuration.
#if !defined(PAS_OBS_OFF)

TEST(Registry, CountersAccumulateAcrossSnapshots) {
  Registry registry;
  const Counter c = registry.counter("events");
  c.add();
  c.add(41);

  auto snap = registry.snapshot();
  ASSERT_EQ(snap.scalars.size(), 1U);
  EXPECT_EQ(snap.scalars[0].name, "events");
  EXPECT_EQ(snap.scalars[0].kind, InstrumentKind::kCounter);
  EXPECT_EQ(snap.scalars[0].value, 42U);

  // The handle stays valid and keeps accumulating after a snapshot.
  c.add(8);
  snap = registry.snapshot();
  EXPECT_EQ(snap.scalars[0].value, 50U);
}

TEST(Registry, SameNameReturnsSameSlot) {
  Registry registry;
  const Counter a = registry.counter("dup");
  const Counter b = registry.counter("dup");
  a.add(1);
  b.add(2);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.scalars.size(), 1U);
  EXPECT_EQ(snap.scalars[0].value, 3U);
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("x"), std::logic_error);

  (void)registry.histogram("h", LogBuckets{1.0, 4});
  // Same name, different bucket spec: also a programming error.
  EXPECT_THROW((void)registry.histogram("h", LogBuckets{2.0, 4}),
               std::logic_error);
  // Same spec re-registers fine.
  EXPECT_NO_THROW((void)registry.histogram("h", LogBuckets{1.0, 4}));
}

TEST(Registry, FirstWriteFreezesRegistration) {
  Registry registry;
  const Counter c = registry.counter("early");
  c.add();  // freezes
  EXPECT_THROW((void)registry.counter("late"), std::logic_error);
  // Existing names still resolve after the freeze.
  EXPECT_NO_THROW((void)registry.counter("early"));
}

TEST(Registry, GaugeReportsHighWaterMark) {
  Registry registry;
  const Gauge g = registry.gauge("peak");
  g.record_max(7);
  g.record_max(3);
  g.record_max(11);
  g.record_max(5);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.scalars.size(), 1U);
  EXPECT_EQ(snap.scalars[0].kind, InstrumentKind::kGauge);
  EXPECT_EQ(snap.scalars[0].value, 11U);
}

TEST(Registry, HistogramRecordsAndMerges) {
  Registry registry;
  const LogBuckets spec{1.0, 4};
  const Histogram h = registry.histogram("lat", spec);
  h.record(1.5);
  h.record(3.0);

  HistogramData pre{spec, {}, 0};
  pre.record(3.5);
  pre.record(100.0);
  h.merge(pre);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.hists.size(), 1U);
  EXPECT_EQ(snap.hists[0].name, "lat");
  EXPECT_EQ(snap.hists[0].data.count, 4U);
  EXPECT_EQ(snap.hists[0].data.bin_counts[1], 1U);
  EXPECT_EQ(snap.hists[0].data.bin_counts[2], 2U);
  EXPECT_EQ(snap.hists[0].data.bin_counts[5], 1U);
}

TEST(Registry, ThreadShardsMergeInSnapshot) {
  Registry registry;
  const Counter c = registry.counter("hits");
  const Gauge g = registry.gauge("peak");
  const Histogram h = registry.histogram("vals", LogBuckets{1.0, 8});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.record_max(static_cast<std::uint64_t>(t * kPerThread + i));
        h.record(1.5);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.scalars[0].value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.scalars[1].value,
            static_cast<std::uint64_t>(kThreads) * kPerThread - 1);
  EXPECT_EQ(snap.hists[0].data.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.hists[0].data.bin_counts[1],
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, TwoRegistriesDoNotAliasShards) {
  // The thread_local shard cache keys on the registry id: writes to a new
  // registry from the same thread must not land in the old one's cells.
  Registry first;
  const Counter a = first.counter("n");
  a.add(5);
  {
    Registry second;
    const Counter b = second.counter("n");
    b.add(7);
    EXPECT_EQ(second.snapshot().scalars[0].value, 7U);
  }
  EXPECT_EQ(first.snapshot().scalars[0].value, 5U);
}

#endif  // !defined(PAS_OBS_OFF)

TEST(Registry, DisabledHandsOutInertHandles) {
  Registry registry(false);
  EXPECT_FALSE(registry.enabled());
  const Counter c = registry.counter("a");
  const Gauge g = registry.gauge("b");
  const Histogram h = registry.histogram("c");
  c.add(3);
  g.record_max(9);
  h.record(1.0);
  const auto snap = registry.snapshot();
  EXPECT_TRUE(snap.scalars.empty());
  EXPECT_TRUE(snap.hists.empty());
}

TEST(Registry, DefaultConstructedHandlesAreSafeNoOps) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  c.add();
  g.record_max(1);
  h.record(1.0);
  h.merge(HistogramData{});
}

}  // namespace
}  // namespace pas::obs

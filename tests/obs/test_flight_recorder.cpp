#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace pas::obs {
namespace {

TEST(FlightRecorder, KeepsArrivalOrderBelowCapacity) {
  FlightRecorder rec(4);
  rec.note('>', 0, "lease 1 0 1");
  rec.note('<', 0, "point_done 0");
  rec.note('<', 0, "lease_done 1");
  ASSERT_EQ(rec.size(), 3U);
  EXPECT_EQ(rec.noted(), 3U);
  const auto entries = rec.entries();
  EXPECT_EQ(entries[0].line, "lease 1 0 1");
  EXPECT_EQ(entries[0].direction, '>');
  EXPECT_EQ(entries[2].line, "lease_done 1");
}

TEST(FlightRecorder, RingWrapKeepsNewestEntries) {
  FlightRecorder rec(3);
  for (int i = 0; i < 10; ++i) {
    rec.note('<', i % 2, "line " + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 3U);
  EXPECT_EQ(rec.noted(), 10U);
  const auto entries = rec.entries();
  ASSERT_EQ(entries.size(), 3U);
  EXPECT_EQ(entries[0].line, "line 7");
  EXPECT_EQ(entries[1].line, "line 8");
  EXPECT_EQ(entries[2].line, "line 9");
}

TEST(FlightRecorder, DumpRendersWindow) {
  FlightRecorder rec(2);
  rec.note('>', 3, "quit");
  rec.note('<', 3, "fail boom");

  std::string text;
  {
    std::FILE* f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    rec.dump(f);
    std::rewind(f);
    char buf[256];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) text += buf;
    std::fclose(f);
  }
  EXPECT_NE(text.find("flight recorder: last 2 of 2 protocol lines"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("> w3 | quit"), std::string::npos) << text;
  EXPECT_NE(text.find("< w3 | fail boom"), std::string::npos) << text;
}

}  // namespace
}  // namespace pas::obs

#include "node/sleep_policy.hpp"

#include <gtest/gtest.h>

namespace pas::node {
namespace {

TEST(SleepSchedule, LinearGrowsToMax) {
  const SleepSchedule p{.kind = RampKind::kLinear,
                        .initial_s = 1.0,
                        .increment_s = 2.0,
                        .max_s = 6.0};
  EXPECT_DOUBLE_EQ(p.next(1.0), 3.0);
  EXPECT_DOUBLE_EQ(p.next(3.0), 5.0);
  EXPECT_DOUBLE_EQ(p.next(5.0), 6.0);  // clamped
  EXPECT_DOUBLE_EQ(p.next(6.0), 6.0);  // stays at max (§3.4)
}

TEST(SleepSchedule, ZeroIncrementIsConstant) {
  const SleepSchedule p{.kind = RampKind::kLinear,
                        .initial_s = 2.0,
                        .increment_s = 0.0,
                        .max_s = 10.0};
  EXPECT_DOUBLE_EQ(p.next(2.0), 2.0);
}

TEST(SleepSchedule, ExponentialDoubles) {
  SleepSchedule p;
  p.kind = RampKind::kExponential;
  p.initial_s = 1.0;
  p.factor = 2.0;
  p.max_s = 10.0;
  EXPECT_DOUBLE_EQ(p.next(1.0), 2.0);
  EXPECT_DOUBLE_EQ(p.next(4.0), 8.0);
  EXPECT_DOUBLE_EQ(p.next(8.0), 10.0);  // clamped
}

TEST(SleepSchedule, FixedNeverRamps) {
  SleepSchedule p;
  p.kind = RampKind::kFixed;
  p.initial_s = 3.0;
  p.max_s = 20.0;
  EXPECT_DOUBLE_EQ(p.next(3.0), 3.0);
  EXPECT_DOUBLE_EQ(p.next(17.0), 3.0);  // fixed ignores current
}

TEST(SleepSchedule, ValidationRejectsBadValues) {
  SleepSchedule p;
  p.initial_s = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SleepSchedule{};
  p.increment_s = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SleepSchedule{};
  p.factor = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SleepSchedule{};
  p.max_s = 0.5;  // below initial
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SleepSchedule, DefaultIsValid) {
  EXPECT_NO_THROW(SleepSchedule{}.validate());
}

TEST(SleepSchedule, StepsToMax) {
  SleepSchedule linear{.kind = RampKind::kLinear,
                       .initial_s = 1.0,
                       .increment_s = 1.0,
                       .max_s = 20.0};
  EXPECT_EQ(linear.steps_to_max(), 19);

  SleepSchedule expo;
  expo.kind = RampKind::kExponential;
  expo.initial_s = 1.0;
  expo.factor = 2.0;
  expo.max_s = 20.0;
  // 1 -> 2 -> 4 -> 8 -> 16 -> 20: five steps.
  EXPECT_EQ(expo.steps_to_max(), 5);

  SleepSchedule fixed;
  fixed.kind = RampKind::kFixed;
  EXPECT_EQ(fixed.steps_to_max(), 0);
}

// Property sweep: every ramp is monotone non-decreasing below the max and
// idempotent at the max.
class RampProperty : public ::testing::TestWithParam<RampKind> {};

TEST_P(RampProperty, MonotoneAndClamped) {
  SleepSchedule p;
  p.kind = GetParam();
  p.initial_s = 0.5;
  p.increment_s = 0.7;
  p.factor = 1.6;
  p.max_s = 12.0;
  p.validate();
  sim::Duration cur = p.initial_s;
  for (int i = 0; i < 64; ++i) {
    const sim::Duration nxt = p.next(cur);
    if (p.kind != RampKind::kFixed) {
      EXPECT_GE(nxt, cur);
    }
    EXPECT_LE(nxt, p.max_s);
    EXPECT_GE(nxt, 0.0);
    cur = nxt;
  }
  EXPECT_DOUBLE_EQ(p.next(p.max_s),
                   p.kind == RampKind::kFixed ? p.initial_s : p.max_s);
}

INSTANTIATE_TEST_SUITE_P(AllRamps, RampProperty,
                         ::testing::Values(RampKind::kLinear,
                                           RampKind::kExponential,
                                           RampKind::kFixed));

TEST(RampKindNames, Stable) {
  EXPECT_STREQ(to_string(RampKind::kLinear), "linear");
  EXPECT_STREQ(to_string(RampKind::kExponential), "exponential");
  EXPECT_STREQ(to_string(RampKind::kFixed), "fixed");
}

#ifndef NDEBUG
TEST(RampKindNamesDeathTest, ValueOutsideTheEnumAssertsInDebug) {
  // Silently serializing "?" would poison campaign CSV resume keys.
  EXPECT_DEATH((void)to_string(static_cast<RampKind>(250)),
               "value outside the enum");
}
#else
TEST(RampKindNames, ValueOutsideTheEnumFallsBackInRelease) {
  EXPECT_STREQ(to_string(static_cast<RampKind>(250)), "?");
}
#endif

}  // namespace
}  // namespace pas::node

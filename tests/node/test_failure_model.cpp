#include "node/failure_model.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pas::node {
namespace {

TEST(FailurePlan, ZeroFractionNobodyDies) {
  const FailurePlan plan(50, FailureConfig{}, sim::Pcg32(1, 1));
  EXPECT_EQ(plan.failing_count(), 0U);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan.death_time(i), sim::kNever);
  }
}

TEST(FailurePlan, ExactSampleSize) {
  FailureConfig cfg;
  cfg.fraction = 0.2;
  cfg.window_start_s = 10.0;
  cfg.window_end_s = 50.0;
  const FailurePlan plan(50, cfg, sim::Pcg32(2, 3));
  EXPECT_EQ(plan.failing_count(), 10U);
}

TEST(FailurePlan, DeathTimesInsideWindow) {
  FailureConfig cfg;
  cfg.fraction = 0.5;
  cfg.window_start_s = 20.0;
  cfg.window_end_s = 80.0;
  const FailurePlan plan(100, cfg, sim::Pcg32(7, 9));
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const sim::Time t = plan.death_time(i);
    if (t < sim::kNever) {
      EXPECT_GE(t, 20.0);
      EXPECT_LE(t, 80.0);
    }
  }
}

TEST(FailurePlan, FullFractionKillsEveryone) {
  FailureConfig cfg;
  cfg.fraction = 1.0;
  cfg.window_end_s = 10.0;
  const FailurePlan plan(30, cfg, sim::Pcg32(4, 4));
  EXPECT_EQ(plan.failing_count(), 30U);
}

TEST(FailurePlan, DeterministicForSameRng) {
  FailureConfig cfg;
  cfg.fraction = 0.3;
  cfg.window_end_s = 100.0;
  const FailurePlan a(40, cfg, sim::Pcg32(5, 6));
  const FailurePlan b(40, cfg, sim::Pcg32(5, 6));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.death_time(i), b.death_time(i));
  }
}

TEST(FailurePlan, RejectsBadConfig) {
  FailureConfig cfg;
  cfg.fraction = 1.5;
  EXPECT_THROW(FailurePlan(10, cfg, sim::Pcg32(1, 1)), std::invalid_argument);
  cfg = FailureConfig{};
  cfg.window_start_s = 5.0;
  cfg.window_end_s = 1.0;
  EXPECT_THROW(FailurePlan(10, cfg, sim::Pcg32(1, 1)), std::invalid_argument);
}

TEST(FailurePlan, VictimsAreDistinct) {
  FailureConfig cfg;
  cfg.fraction = 0.4;
  cfg.window_end_s = 10.0;
  const FailurePlan plan(100, cfg, sim::Pcg32(8, 8));
  std::set<std::size_t> victims;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (plan.death_time(i) < sim::kNever) victims.insert(i);
  }
  EXPECT_EQ(victims.size(), 40U);
}

TEST(FailurePlan, DefaultConstructedIsEmpty) {
  const FailurePlan plan;
  EXPECT_EQ(plan.size(), 0U);
  EXPECT_EQ(plan.failing_count(), 0U);
}

}  // namespace
}  // namespace pas::node

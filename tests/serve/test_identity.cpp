// The serving contract: attaching a CampaignFeed + live Server to a
// running campaign is observe-only — CSV/JSONL/per-run outputs are
// byte-identical to an unobserved run — and a should_stop interrupt
// leaves outputs resumable to the same final bytes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "exp/manifest.hpp"
#include "exp/runner.hpp"
#include "serve/feed.hpp"
#include "serve/server.hpp"
#include "world/paper_setup.hpp"

namespace pas::serve {
namespace {

namespace fs = std::filesystem;

exp::Manifest small_manifest() {
  exp::Manifest m;
  m.name = "serve-identity";
  m.base = world::paper_scenario();
  m.base.duration_s = 60.0;
  m.replications = 2;
  m.seed_base = 5;
  m.axes = {
      exp::Axis{.kind = exp::AxisKind::kPolicy, .labels = {"NS", "PAS"}},
      exp::Axis{.kind = exp::AxisKind::kMaxSleep, .numbers = {5.0, 15.0}},
  };
  return m;
}

class ServeIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pas_serve_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  fs::path dir_;
};

TEST_F(ServeIdentityTest, ObservedRunIsByteIdenticalToUnobserved) {
  const exp::Manifest m = small_manifest();

  exp::CampaignOptions plain;
  plain.jobs = 2;
  plain.out_csv = (dir_ / "plain.csv").string();
  plain.out_json = (dir_ / "plain.jsonl").string();
  plain.per_run_csv = (dir_ / "plain_runs.csv").string();
  const auto plain_report = exp::run_campaign(m, plain);
  EXPECT_EQ(plain_report.computed, 4U);

  // Observed run: feed attached, server live, one SSE client connected and
  // a poller hammering /api/status for the duration.
  CampaignFeed::Options feed_options;
  feed_options.store_points = true;
  CampaignFeed feed(feed_options);
  Server::Options server_options;
  server_options.port = 0;
  server_options.tick_ms = 10;
  Server server(feed, server_options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  std::thread server_thread([&server] { server.run(); });
  std::atomic<bool> polling{true};
  std::thread poller([&feed, &polling] {
    while (polling.load()) {
      (void)feed.status();
      (void)feed.events_since(0, 64);
      (void)feed.metrics();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  exp::CampaignOptions observed;
  observed.jobs = 2;
  observed.out_csv = (dir_ / "observed.csv").string();
  observed.out_json = (dir_ / "observed.jsonl").string();
  observed.per_run_csv = (dir_ / "observed_runs.csv").string();
  observed.feed = &feed;
  const auto observed_report = exp::run_campaign(m, observed);
  EXPECT_EQ(observed_report.computed, 4U);

  polling.store(false);
  poller.join();
  server.stop();
  server_thread.join();

  EXPECT_EQ(slurp(dir_ / "plain.csv"), slurp(dir_ / "observed.csv"));
  EXPECT_EQ(slurp(dir_ / "plain.jsonl"), slurp(dir_ / "observed.jsonl"));
  EXPECT_EQ(slurp(dir_ / "plain_runs.csv"), slurp(dir_ / "observed_runs.csv"));

  // The feed retained a row per point and marked the campaign done.
  EXPECT_EQ(feed.points_since(0).size(), 4U);
  EXPECT_EQ(feed.status().state, CampaignFeed::State::kDone);
}

TEST_F(ServeIdentityTest, InterruptLeavesResumableOutput) {
  const exp::Manifest m = small_manifest();

  exp::CampaignOptions reference;
  reference.jobs = 1;
  reference.out_csv = (dir_ / "reference.csv").string();
  (void)exp::run_campaign(m, reference);

  // Stop after the first completed point: the engine abandons in-flight
  // work, skips finalize, and reports the interrupt.
  CampaignFeed feed;
  std::atomic<int> done_points{0};
  exp::CampaignOptions interrupted;
  interrupted.jobs = 1;
  interrupted.out_csv = (dir_ / "partial.csv").string();
  interrupted.feed = &feed;
  interrupted.progress = [&done_points](const exp::PointSummary&, std::size_t,
                                        std::size_t) { ++done_points; };
  interrupted.should_stop = [&done_points] { return done_points.load() >= 1; };
  const auto report = exp::run_campaign(m, interrupted);
  EXPECT_TRUE(report.interrupted);
  EXPECT_LT(report.computed, 4U);
  EXPECT_EQ(feed.status().state, CampaignFeed::State::kInterrupted);

  // Resuming computes only the rest and converges to identical bytes.
  exp::CampaignOptions resume;
  resume.jobs = 1;
  resume.out_csv = (dir_ / "partial.csv").string();
  resume.resume = true;
  const auto resumed = exp::run_campaign(m, resume);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.computed + resumed.skipped, 4U);
  EXPECT_GT(resumed.skipped, 0U);
  EXPECT_EQ(slurp(dir_ / "reference.csv"), slurp(dir_ / "partial.csv"));
}

}  // namespace
}  // namespace pas::serve

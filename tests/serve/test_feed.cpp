// serve::CampaignFeed semantics: counters, the bounded event ring,
// events_since's exactly-once guarantees, the point-row log, and the
// submission queue. The SSE soak test (test_server.cpp) leans on the ring
// properties proven here.
#include "serve/feed.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/json.hpp"

namespace pas::serve {
namespace {

CampaignFeed::Options quiet_options(bool store_points = true,
                                    std::size_t capacity = 1 << 16) {
  CampaignFeed::Options options;
  options.store_points = store_points;
  options.event_capacity = capacity;
  return options;
}

TEST(CampaignFeed, LifecycleCountersAndState) {
  CampaignFeed feed(quiet_options());
  EXPECT_EQ(feed.status().state, CampaignFeed::State::kIdle);

  feed.begin_campaign("demo", 0, 10, 3, 2);
  auto status = feed.status();
  EXPECT_EQ(status.state, CampaignFeed::State::kRunning);
  EXPECT_EQ(status.campaign, "demo");
  EXPECT_EQ(status.total_points, 10U);
  EXPECT_EQ(status.done_points, 2U);  // resumed rows count as done
  EXPECT_EQ(status.computed, 0U);
  EXPECT_EQ(status.resumed, 2U);
  EXPECT_EQ(status.replications, 3U);

  feed.point_done("{\"point\":4}");
  feed.add_recovered(3);
  status = feed.status();
  EXPECT_EQ(status.done_points, 6U);
  EXPECT_EQ(status.computed, 4U);

  feed.end_campaign(false);
  EXPECT_EQ(feed.status().state, CampaignFeed::State::kDone);

  feed.begin_campaign("next", 1, 5, 2, 0);
  EXPECT_EQ(feed.status().state, CampaignFeed::State::kRunning);
  EXPECT_EQ(feed.status().campaign_id, 1U);
  feed.end_campaign(true);
  EXPECT_EQ(feed.status().state, CampaignFeed::State::kInterrupted);
}

TEST(CampaignFeed, EventSequencesAreMonotonicAndGapFree) {
  CampaignFeed feed(quiet_options());
  feed.begin_campaign("demo", 0, 4, 1, 0);
  for (int i = 0; i < 4; ++i) {
    feed.point_done("{\"point\":" + std::to_string(i) + "}");
  }
  feed.end_campaign(false);

  const auto events = feed.events_since(0);
  ASSERT_EQ(events.size(), 6U);  // campaign start + 4 points + campaign done
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);  // contiguous from 1, no gaps
  }
  EXPECT_EQ(events.front().type, "campaign");
  EXPECT_EQ(events[1].type, "point");
  EXPECT_EQ(events.back().type, "campaign");
  EXPECT_EQ(feed.status().last_seq, 6U);
}

TEST(CampaignFeed, EventsSinceResumesWithoutRepeatingOrSkipping) {
  CampaignFeed feed(quiet_options());
  feed.begin_campaign("demo", 0, 6, 1, 0);
  for (int i = 0; i < 6; ++i) {
    feed.point_done("{\"point\":" + std::to_string(i) + "}");
  }

  // Drain in chunks the way an SSE connection does, remembering the last
  // seq; the union must be exactly-once in order.
  std::vector<std::uint64_t> seen;
  std::uint64_t cursor = 0;
  while (true) {
    const auto chunk = feed.events_since(cursor, 3);
    if (chunk.empty()) break;
    for (const auto& e : chunk) seen.push_back(e.seq);
    cursor = chunk.back().seq;
  }
  ASSERT_EQ(seen.size(), 7U);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);

  // A cursor beyond the newest event yields nothing.
  EXPECT_TRUE(feed.events_since(cursor).empty());
}

TEST(CampaignFeed, BoundedRingDropsOldestButKeepsSeqNumbers) {
  CampaignFeed feed(quiet_options(true, 4));
  feed.begin_campaign("demo", 0, 10, 1, 0);  // seq 1
  for (int i = 0; i < 9; ++i) {
    feed.point_done("{\"point\":" + std::to_string(i) + "}");  // seq 2..10
  }

  const auto events = feed.events_since(0);
  ASSERT_EQ(events.size(), 4U);
  // The oldest entries fell out of the ring: a client replaying from 0
  // sees the gap in the ids (7 follows nothing) and can re-sync via
  // /api/points. Nothing is ever re-numbered.
  EXPECT_EQ(events.front().seq, 7U);
  EXPECT_EQ(events.back().seq, 10U);

  // points_since still has every row: the log is not a ring.
  EXPECT_EQ(feed.points_since(0).size(), 9U);
}

TEST(CampaignFeed, PointRowLogIsIncremental) {
  CampaignFeed feed(quiet_options());
  feed.begin_campaign("demo", 0, 3, 1, 0);
  feed.point_done("{\"point\":0}");
  feed.point_done("{\"point\":1}");
  feed.point_done("{\"point\":2}");

  const auto all = feed.points_since(0);
  ASSERT_EQ(all.size(), 3U);
  EXPECT_EQ(all[0], "{\"point\":0}");
  const auto tail = feed.points_since(2);
  ASSERT_EQ(tail.size(), 1U);
  EXPECT_EQ(tail[0], "{\"point\":2}");
  EXPECT_TRUE(feed.points_since(3).empty());
  EXPECT_EQ(feed.status().points_logged, 3U);
}

TEST(CampaignFeed, StorePointsOffKeepsEventsButNoRowLog) {
  CampaignFeed feed(quiet_options(/*store_points=*/false));
  feed.begin_campaign("demo", 0, 2, 1, 0);
  feed.point_done("{\"point\":0}");
  EXPECT_TRUE(feed.points_since(0).empty());
  // The SSE "point" event still fires; only retention is disabled.
  const auto events = feed.events_since(1);
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].type, "point");
}

TEST(CampaignFeed, ProgressTickIsThrottledUnlessForced) {
  CampaignFeed feed(quiet_options());
  feed.begin_campaign("demo", 0, 4, 1, 0);
  const auto before = feed.status().last_seq;
  feed.progress_tick(false);  // inside the echo interval: suppressed
  EXPECT_EQ(feed.status().last_seq, before);
  feed.progress_tick(true);  // forced: always emits
  const auto events = feed.events_since(before);
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].type, "progress");
  const io::Json data = io::Json::parse(events[0].data);
  EXPECT_DOUBLE_EQ(data.at("done").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(data.at("total").as_double(), 4.0);
}

TEST(CampaignFeed, WorkerTableAndEvents) {
  CampaignFeed feed(quiet_options());
  feed.begin_campaign("demo", 0, 4, 1, 0);
  std::vector<CampaignFeed::WorkerRow> rows(2);
  rows[0].id = 0;
  rows[0].has_lease = true;
  rows[0].lease_points_left = 3;
  rows[1].id = 1;
  feed.update_workers(rows);
  EXPECT_EQ(feed.status().workers.size(), 2U);
  EXPECT_TRUE(feed.status().workers[0].has_lease);

  feed.worker_event("crash", 1, "exit 9");
  const auto events = feed.events_since(feed.status().last_seq - 1);
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].type, "worker");
  const io::Json data = io::Json::parse(events[0].data);
  EXPECT_EQ(data.at("event").as_string(), "crash");
  EXPECT_DOUBLE_EQ(data.at("worker").as_double(), 1.0);
  EXPECT_EQ(data.at("detail").as_string(), "exit 9");
}

TEST(CampaignFeed, MetricsSourceInstallAndClear) {
  CampaignFeed feed(quiet_options());
  EXPECT_TRUE(feed.metrics().as_object().empty());
  feed.set_metrics_source([] {
    io::JsonObject o;
    o["scope"] = "campaign";
    return io::Json(std::move(o));
  });
  EXPECT_EQ(feed.metrics().at("scope").as_string(), "campaign");
  feed.set_metrics_source(nullptr);
  EXPECT_TRUE(feed.metrics().as_object().empty());
}

TEST(CampaignFeed, SubmissionQueueIsFifoWithStableIds) {
  CampaignFeed feed(quiet_options());
  EXPECT_EQ(feed.submit("{\"name\":\"a\"}"), 1U);
  EXPECT_EQ(feed.submit("{\"name\":\"b\"}"), 2U);
  EXPECT_EQ(feed.status().queued_campaigns, 2U);

  auto first = feed.pop_submission();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, 1U);
  EXPECT_EQ(first->second, "{\"name\":\"a\"}");
  auto second = feed.pop_submission();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, 2U);
  EXPECT_FALSE(feed.pop_submission().has_value());
  // Ids never recycle, so /api/campaigns responses stay unambiguous.
  EXPECT_EQ(feed.submit("{\"name\":\"c\"}"), 3U);
}

}  // namespace
}  // namespace pas::serve

// HTTP parser corpus + response/SSE framing (serve/http.hpp). Everything
// here runs without a socket: the parser eats arbitrary byte slices, so
// the corpus drives it with whole requests, one-byte drips, pipelined
// batches, and poisoned input, asserting the exact error statuses the
// server maps to close-with-status behavior.
#include "serve/http.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pas::serve {
namespace {

TEST(RequestParser, ParsesASimpleGet) {
  RequestParser parser;
  ASSERT_TRUE(parser.consume("GET /api/status HTTP/1.1\r\n"
                             "Host: localhost\r\n"
                             "Accept: */*\r\n"
                             "\r\n"));
  ASSERT_TRUE(parser.has_request());
  const HttpRequest request = parser.take_request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/api/status");
  EXPECT_EQ(request.path, "/api/status");
  EXPECT_EQ(request.query, "");
  EXPECT_EQ(request.headers.at("host"), "localhost");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_FALSE(parser.has_request());
}

TEST(RequestParser, SplitsTargetIntoPathAndQuery) {
  RequestParser parser;
  ASSERT_TRUE(
      parser.consume("GET /api/points?since=12&max=5 HTTP/1.1\r\n\r\n"));
  const HttpRequest request = parser.take_request();
  EXPECT_EQ(request.path, "/api/points");
  EXPECT_EQ(request.query, "since=12&max=5");
  EXPECT_EQ(query_param(request, "since"), "12");
  EXPECT_EQ(query_param(request, "max"), "5");
  EXPECT_EQ(query_param(request, "absent", "7"), "7");
}

TEST(RequestParser, ByteAtATimeProducesTheSameRequest) {
  const std::string wire =
      "POST /api/campaigns HTTP/1.1\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "{\"a\"";
  RequestParser parser;
  for (const char c : wire) {
    ASSERT_TRUE(parser.consume(std::string_view(&c, 1)));
  }
  ASSERT_TRUE(parser.has_request());
  const HttpRequest request = parser.take_request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "{\"a\"");
}

TEST(RequestParser, TruncatedRequestIsNotACompletedRequest) {
  RequestParser parser;
  ASSERT_TRUE(parser.consume("GET /api/status HTTP/1.1\r\nHost: x\r\n"));
  EXPECT_FALSE(parser.has_request());
  EXPECT_FALSE(parser.failed());
  // The terminator arrives later; the request completes then.
  ASSERT_TRUE(parser.consume("\r\n"));
  EXPECT_TRUE(parser.has_request());
}

TEST(RequestParser, PipelinedRequestsDrainInOrder) {
  RequestParser parser;
  ASSERT_TRUE(parser.consume("GET /a HTTP/1.1\r\n\r\n"
                             "GET /b HTTP/1.1\r\n\r\n"
                             "GET /c HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(parser.has_request());
  EXPECT_EQ(parser.take_request().path, "/a");
  EXPECT_EQ(parser.take_request().path, "/b");
  EXPECT_EQ(parser.take_request().path, "/c");
  EXPECT_FALSE(parser.has_request());
}

TEST(RequestParser, MalformedRequestLineFailsWith400) {
  for (const char* wire : {
           "garbage\r\n\r\n",
           "get /lower HTTP/1.1\r\n\r\n",      // method must be uppercase
           "GET nopath HTTP/1.1\r\n\r\n",      // target must start with '/'
           "GET / HTTP/2.0\r\n\r\n",           // unsupported version
           "GET /\r\n\r\n",                    // missing version
       }) {
    RequestParser parser;
    EXPECT_FALSE(parser.consume(wire)) << wire;
    EXPECT_TRUE(parser.failed()) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(RequestParser, OversizedHeadFailsWith431) {
  RequestParser parser(RequestParser::Limits{64, 1024});
  const std::string wire = "GET / HTTP/1.1\r\nX-Pad: " +
                           std::string(128, 'x') + "\r\n\r\n";
  EXPECT_FALSE(parser.consume(wire));
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, OversizedBodyFailsWith413) {
  RequestParser parser(RequestParser::Limits{8192, 16});
  EXPECT_FALSE(parser.consume("POST /api/campaigns HTTP/1.1\r\n"
                              "Content-Length: 17\r\n\r\n"));
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParser, ChunkedBodyFailsWith501) {
  RequestParser parser;
  EXPECT_FALSE(parser.consume("POST /api/campaigns HTTP/1.1\r\n"
                              "Transfer-Encoding: chunked\r\n\r\n"));
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParser, ErrorStateIsStickyUntilReset) {
  RequestParser parser;
  EXPECT_FALSE(parser.consume("broken\r\n\r\n"));
  // Later (well-formed) bytes are never interpreted after the poison.
  EXPECT_FALSE(parser.consume("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_FALSE(parser.has_request());

  parser.reset();
  EXPECT_FALSE(parser.failed());
  ASSERT_TRUE(parser.consume("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(parser.has_request());
}

TEST(RequestParser, ConnectionHeaderControlsKeepAlive) {
  RequestParser parser;
  ASSERT_TRUE(parser.consume("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  EXPECT_FALSE(parser.take_request().keep_alive);

  ASSERT_TRUE(parser.consume("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_FALSE(parser.take_request().keep_alive);

  ASSERT_TRUE(
      parser.consume("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
  EXPECT_TRUE(parser.take_request().keep_alive);
}

TEST(HttpResponse, CarriesStatusLengthAndConnection) {
  const std::string response =
      http_response(200, "application/json", "{\"ok\":true}", true);
  EXPECT_EQ(response.find("HTTP/1.1 200 OK\r\n"), 0U);
  EXPECT_NE(response.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  const std::string closing = http_response(404, "text/plain", "no", false);
  EXPECT_EQ(closing.find("HTTP/1.1 404 Not Found\r\n"), 0U);
  EXPECT_NE(closing.find("Connection: close\r\n"), std::string::npos);
}

TEST(SseFraming, EventCommentAndPreamble) {
  EXPECT_EQ(sse_event(7, "point", "{\"point\":3}"),
            "id: 7\nevent: point\ndata: {\"point\":3}\n\n");
  EXPECT_EQ(sse_comment("keep-alive"), ": keep-alive\n\n");

  const std::string preamble = sse_preamble();
  EXPECT_EQ(preamble.find("HTTP/1.1 200 OK\r\n"), 0U);
  EXPECT_NE(preamble.find("Content-Type: text/event-stream"),
            std::string::npos);
  // A stream has no Content-Length — frames follow until close.
  EXPECT_EQ(preamble.find("Content-Length"), std::string::npos);
}

}  // namespace
}  // namespace pas::serve

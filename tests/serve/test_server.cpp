// serve::Server over real sockets: endpoint routing, the submission
// gate, incremental /api/points, SSE framing on the wire, and the
// 8-client soak proving no SSE consumer ever sees a dropped or
// duplicated point-completion event.
#include "serve/server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "serve/feed.hpp"

namespace pas::serve {
namespace {

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{5, 0};  // a wedged server fails the test, not the suite
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

struct Response {
  int status = 0;
  std::string head;
  std::string body;
};

/// One-shot request with Connection: close; the response is everything
/// until EOF.
Response roundtrip(std::uint16_t port, const std::string& method,
                   const std::string& target, const std::string& body = "") {
  const int fd = connect_to(port);
  EXPECT_GE(fd, 0);
  std::string wire = method + " " + target + " HTTP/1.1\r\n" +
                     "Host: localhost\r\nConnection: close\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n" + body;
  send_all(fd, wire);
  const std::string raw = read_to_eof(fd);
  ::close(fd);

  Response response;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return response;
  response.head = raw.substr(0, head_end);
  response.body = raw.substr(head_end + 4);
  if (raw.size() > 12) response.status = std::atoi(raw.c_str() + 9);
  return response;
}

struct SseFrame {
  std::uint64_t id = 0;
  std::string event;
  std::string data;
};

/// Parses complete "id/event/data" frames out of an SSE byte stream,
/// leaving any trailing partial frame in `stream`. Comment frames are
/// dropped.
std::vector<SseFrame> drain_frames(std::string& stream) {
  std::vector<SseFrame> out;
  std::size_t frame_end;
  while ((frame_end = stream.find("\n\n")) != std::string::npos) {
    const std::string frame = stream.substr(0, frame_end);
    stream.erase(0, frame_end + 2);
    SseFrame parsed;
    bool is_event = false;
    std::size_t pos = 0;
    while (pos < frame.size()) {
      std::size_t nl = frame.find('\n', pos);
      if (nl == std::string::npos) nl = frame.size();
      const std::string line = frame.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.rfind("id: ", 0) == 0) {
        parsed.id = std::strtoull(line.c_str() + 4, nullptr, 10);
      } else if (line.rfind("event: ", 0) == 0) {
        parsed.event = line.substr(7);
        is_event = true;
      } else if (line.rfind("data: ", 0) == 0) {
        parsed.data = line.substr(6);
      }
    }
    if (is_event) out.push_back(std::move(parsed));
  }
  return out;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Server::Options options;
    options.port = 0;  // kernel-assigned; the fixture works in parallel CI
    options.tick_ms = 20;
    server_ = std::make_unique<Server>(feed_, options);
    std::string error;
    ASSERT_TRUE(server_->start(error)) << error;
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->stop();
    thread_.join();
  }

  CampaignFeed feed_{[] {
    CampaignFeed::Options o;
    o.store_points = true;
    return o;
  }()};
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServerTest, StatusEndpointReflectsTheFeed) {
  feed_.begin_campaign("wire-test", 0, 12, 5, 2);
  feed_.point_done("{\"point\":0}");

  const Response response = roundtrip(server_->port(), "GET", "/api/status");
  EXPECT_EQ(response.status, 200);
  const io::Json j = io::Json::parse(response.body);
  EXPECT_EQ(j.at("state").as_string(), "running");
  EXPECT_EQ(j.at("campaign").as_string(), "wire-test");
  EXPECT_DOUBLE_EQ(j.at("total_points").as_double(), 12.0);
  EXPECT_DOUBLE_EQ(j.at("done_points").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(j.at("resumed").as_double(), 2.0);
  EXPECT_TRUE(j.at("workers").as_array().empty());
}

TEST_F(ServerTest, RoutingErrors) {
  EXPECT_EQ(roundtrip(server_->port(), "GET", "/nope").status, 404);
  EXPECT_EQ(roundtrip(server_->port(), "POST", "/api/status").status, 405);
  EXPECT_EQ(roundtrip(server_->port(), "POST", "/api/events").status, 405);
  EXPECT_EQ(roundtrip(server_->port(), "GET", "/api/campaigns").status, 405);
}

TEST_F(ServerTest, DashboardIsServedAtRoot) {
  const Response response = roundtrip(server_->port(), "GET", "/");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("text/html"), std::string::npos);
  EXPECT_NE(response.body.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(response.body.find("/api/events"), std::string::npos);
}

TEST_F(ServerTest, MalformedRequestGetsParserStatus) {
  const int fd = connect_to(server_->port());
  ASSERT_GE(fd, 0);
  send_all(fd, "garbage\r\n\r\n");
  const std::string raw = read_to_eof(fd);
  ::close(fd);
  EXPECT_NE(raw.find("400 Bad Request"), std::string::npos);
}

TEST_F(ServerTest, CampaignSubmissionQueuesIntoTheFeed) {
  const Response accepted = roundtrip(server_->port(), "POST",
                                      "/api/campaigns", "{\"name\":\"x\"}");
  EXPECT_EQ(accepted.status, 202);
  EXPECT_DOUBLE_EQ(io::Json::parse(accepted.body).at("id").as_double(), 1.0);

  const Response rejected =
      roundtrip(server_->port(), "POST", "/api/campaigns", "not json");
  EXPECT_EQ(rejected.status, 400);
  EXPECT_TRUE(io::Json::parse(rejected.body).contains("error"));

  auto submission = feed_.pop_submission();
  ASSERT_TRUE(submission.has_value());
  EXPECT_EQ(submission->second, "{\"name\":\"x\"}");
  EXPECT_FALSE(feed_.pop_submission().has_value());  // the reject never queued
}

TEST_F(ServerTest, PointsEndpointPagesIncrementally) {
  feed_.begin_campaign("pages", 0, 5, 1, 0);
  for (int i = 0; i < 5; ++i) {
    feed_.point_done("{\"point\":" + std::to_string(i) + "}");
  }

  const Response all = roundtrip(server_->port(), "GET", "/api/points");
  EXPECT_EQ(all.status, 200);
  io::Json j = io::Json::parse(all.body);
  EXPECT_DOUBLE_EQ(j.at("count").as_double(), 5.0);
  EXPECT_DOUBLE_EQ(j.at("next").as_double(), 5.0);
  ASSERT_EQ(j.at("rows").as_array().size(), 5U);
  EXPECT_DOUBLE_EQ(j.at("rows").as_array()[0].at("point").as_double(), 0.0);

  const Response tail =
      roundtrip(server_->port(), "GET", "/api/points?since=3");
  j = io::Json::parse(tail.body);
  EXPECT_DOUBLE_EQ(j.at("count").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(j.at("rows").as_array()[0].at("point").as_double(), 3.0);
}

TEST_F(ServerTest, SseStreamDeliversLiveEventsInOrder) {
  feed_.begin_campaign("sse", 0, 3, 1, 0);  // seq 1, before the client

  const int fd = connect_to(server_->port());
  ASSERT_GE(fd, 0);
  send_all(fd, "GET /api/events HTTP/1.1\r\nHost: x\r\n\r\n");

  // Events published after the subscribe must arrive too.
  feed_.point_done("{\"point\":0}");
  feed_.point_done("{\"point\":1}");
  feed_.end_campaign(false);

  std::string stream;
  std::vector<SseFrame> frames;
  char buf[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (frames.size() < 4 && std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    stream.append(buf, static_cast<std::size_t>(n));
    if (stream.find("\r\n\r\n") != std::string::npos) {
      // Strip the preamble once, then treat the rest as frames.
      EXPECT_NE(stream.find("text/event-stream"), std::string::npos);
      stream.erase(0, stream.find("\r\n\r\n") + 4);
    }
    for (auto& frame : drain_frames(stream)) frames.push_back(frame);
  }
  ::close(fd);

  ASSERT_EQ(frames.size(), 4U);
  EXPECT_EQ(frames[0].event, "campaign");  // ring replay from seq 0
  EXPECT_EQ(frames[1].event, "point");
  EXPECT_EQ(frames[2].event, "point");
  EXPECT_EQ(frames[3].event, "campaign");
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].id, i + 1);
  }
  EXPECT_NE(frames[3].data.find("\"done\""), std::string::npos);
}

TEST_F(ServerTest, LastEventIdResumesAfterTheGivenSeq) {
  feed_.begin_campaign("resume", 0, 3, 1, 0);  // seq 1
  feed_.point_done("{\"point\":0}");           // seq 2
  feed_.point_done("{\"point\":1}");           // seq 3

  const int fd = connect_to(server_->port());
  ASSERT_GE(fd, 0);
  send_all(fd,
           "GET /api/events HTTP/1.1\r\nHost: x\r\nLast-Event-ID: 2\r\n\r\n");
  std::string stream;
  std::vector<SseFrame> frames;
  char buf[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (frames.empty() && std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    stream.append(buf, static_cast<std::size_t>(n));
    const std::size_t head = stream.find("\r\n\r\n");
    if (head != std::string::npos) stream.erase(0, head + 4);
    for (auto& frame : drain_frames(stream)) frames.push_back(frame);
  }
  ::close(fd);

  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames[0].id, 3U);  // replay starts after seq 2
}

// The acceptance soak: 8 concurrent SSE clients while points complete;
// every client must observe every point-completion seq exactly once, in
// order, with monotonic progress counters.
TEST_F(ServerTest, EightClientSoakSeesEveryPointExactlyOnce) {
  constexpr int kClients = 8;
  constexpr int kPoints = 200;

  struct ClientResult {
    std::vector<std::uint64_t> point_seqs;
    std::vector<double> progress_done;
    bool saw_done = false;
  };
  std::vector<ClientResult> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &results] {
      ClientResult& result = results[c];
      const int fd = connect_to(server_->port());
      if (fd < 0) return;
      send_all(fd, "GET /api/events HTTP/1.1\r\nHost: x\r\n\r\n");
      std::string stream;
      bool preamble_stripped = false;
      char buf[8192];
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (!result.saw_done &&
             std::chrono::steady_clock::now() < deadline) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        stream.append(buf, static_cast<std::size_t>(n));
        if (!preamble_stripped) {
          const std::size_t head = stream.find("\r\n\r\n");
          if (head == std::string::npos) continue;
          stream.erase(0, head + 4);
          preamble_stripped = true;
        }
        for (const auto& frame : drain_frames(stream)) {
          if (frame.event == "point") {
            result.point_seqs.push_back(frame.id);
          } else if (frame.event == "progress") {
            result.progress_done.push_back(
                io::Json::parse(frame.data).at("done").as_double());
          } else if (frame.event == "campaign" &&
                     frame.data.find("\"done\"") != std::string::npos) {
            result.saw_done = true;
            break;
          }
        }
      }
      ::close(fd);
    });
  }

  // Give every client a moment to subscribe, then produce the campaign.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  feed_.begin_campaign("soak", 0, kPoints, 1, 0);
  for (int i = 0; i < kPoints; ++i) {
    feed_.point_done("{\"point\":" + std::to_string(i) + "}");
    feed_.progress_tick(i % 25 == 0);
    if (i % 50 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  feed_.end_campaign(false);
  for (auto& t : clients) t.join();

  // Every client saw the full campaign: each point seq exactly once, in
  // strictly increasing order, and progress counters never went backwards.
  std::vector<std::uint64_t> expected;
  for (const auto& event : feed_.events_since(0, 1 << 16)) {
    if (event.type == "point") expected.push_back(event.seq);
  }
  ASSERT_EQ(expected.size(), static_cast<std::size_t>(kPoints));
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(results[c].saw_done) << "client " << c;
    EXPECT_EQ(results[c].point_seqs, expected) << "client " << c;
    for (std::size_t i = 1; i < results[c].progress_done.size(); ++i) {
      EXPECT_LE(results[c].progress_done[i - 1], results[c].progress_done[i])
          << "client " << c;
    }
  }
}

TEST(ParseListenAddress, HostPortForms) {
  std::string host;
  std::uint16_t port = 0;
  ASSERT_TRUE(parse_listen_address("127.0.0.1:8080", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);

  ASSERT_TRUE(parse_listen_address(":0", host, port));
  EXPECT_EQ(host, "127.0.0.1");  // empty host defaults to loopback
  EXPECT_EQ(port, 0);

  EXPECT_FALSE(parse_listen_address("no-port", host, port));
  EXPECT_FALSE(parse_listen_address("h:99999", host, port));
  EXPECT_FALSE(parse_listen_address("h:abc", host, port));
}

}  // namespace
}  // namespace pas::serve

#include "metrics/report.hpp"

#include <gtest/gtest.h>

namespace pas::metrics {
namespace {

node::SensorNode make_node(std::uint32_t id, sim::Time arrival,
                           sim::Time detected) {
  node::SensorNode n;
  n.id = id;
  n.meter = energy::EnergyMeter(energy::PowerProfile::telos(), 0.0,
                                energy::PowerMode::kActive);
  n.arrival = arrival;
  n.detected = detected;
  return n;
}

TEST(CollectOutcomes, MapsNodeFields) {
  std::vector<node::SensorNode> nodes;
  nodes.push_back(make_node(0, 10.0, 12.5));
  nodes[0].meter.add_tx(1000);
  nodes[0].meter.finalize(100.0);
  const auto outcomes = collect_outcomes(nodes);
  ASSERT_EQ(outcomes.size(), 1U);
  EXPECT_TRUE(outcomes[0].was_reached);
  EXPECT_TRUE(outcomes[0].was_detected);
  EXPECT_DOUBLE_EQ(outcomes[0].delay_s, 2.5);
  EXPECT_GT(outcomes[0].energy_j, 0.0);
  EXPECT_EQ(outcomes[0].tx_count, 1U);
  EXPECT_DOUBLE_EQ(outcomes[0].energy_tx_j,
                   energy::PowerProfile::telos().tx_energy(1000));
}

TEST(CollectOutcomes, UnreachedAndUndetected) {
  std::vector<node::SensorNode> nodes;
  nodes.push_back(make_node(0, sim::kNever, sim::kNever));
  nodes.push_back(make_node(1, 50.0, sim::kNever));
  const auto outcomes = collect_outcomes(nodes);
  EXPECT_FALSE(outcomes[0].was_reached);
  EXPECT_TRUE(outcomes[1].was_reached);
  EXPECT_FALSE(outcomes[1].was_detected);
}

TEST(Summarize, DelayOverDetectedOnly) {
  std::vector<node::SensorNode> nodes;
  nodes.push_back(make_node(0, 10.0, 11.0));  // delay 1
  nodes.push_back(make_node(1, 10.0, 13.0));  // delay 3
  nodes.push_back(make_node(2, 10.0, sim::kNever));  // missed
  nodes.push_back(make_node(3, sim::kNever, sim::kNever));  // unreached
  for (auto& n : nodes) n.meter.finalize(100.0);
  const auto m = summarize(collect_outcomes(nodes), 100.0, 100.0, {}, {});
  EXPECT_EQ(m.node_count, 4U);
  EXPECT_EQ(m.reached, 3U);
  EXPECT_EQ(m.detected, 2U);
  EXPECT_EQ(m.missed, 1U);
  EXPECT_DOUBLE_EQ(m.avg_delay_s, 2.0);
  EXPECT_DOUBLE_EQ(m.max_delay_s, 3.0);
}

TEST(Summarize, FailedNodesExcludedFromDelay) {
  std::vector<node::SensorNode> nodes;
  nodes.push_back(make_node(0, 10.0, 11.0));
  nodes.push_back(make_node(1, 10.0, sim::kNever));
  nodes[1].failed = true;
  for (auto& n : nodes) n.meter.finalize(100.0);
  const auto m = summarize(collect_outcomes(nodes), 100.0, 100.0, {}, {});
  EXPECT_EQ(m.reached, 1U);  // failed node not counted
  EXPECT_EQ(m.missed, 0U);
}

TEST(Summarize, EnergyAveragesAllNodes) {
  std::vector<node::SensorNode> nodes;
  nodes.push_back(make_node(0, sim::kNever, sim::kNever));  // active 100 s
  nodes.push_back(make_node(1, sim::kNever, sim::kNever));
  nodes[1].meter.set_mode(energy::PowerMode::kSleep, 0.0);
  for (auto& n : nodes) n.meter.finalize(100.0);
  const auto m = summarize(collect_outcomes(nodes), 100.0, 100.0, {}, {});
  const double active_j = 41e-3 * 100.0;
  EXPECT_GT(m.avg_energy_j, active_j / 2.0 * 0.9);
  EXPECT_LT(m.avg_energy_j, active_j);
  EXPECT_NEAR(m.total_energy_j, m.avg_energy_j * 2.0, 1e-9);
  EXPECT_NEAR(m.avg_active_fraction, 0.5, 0.01);
}

TEST(Summarize, LateArrivalsAreCensoredNotMissed) {
  std::vector<node::SensorNode> nodes;
  nodes.push_back(make_node(0, 95.0, sim::kNever));  // after cutoff: censored
  nodes.push_back(make_node(1, 50.0, sim::kNever));  // before cutoff: missed
  for (auto& n : nodes) n.meter.finalize(100.0);
  const auto m = summarize(collect_outcomes(nodes), 100.0, 80.0, {}, {});
  EXPECT_EQ(m.censored, 1U);
  EXPECT_EQ(m.missed, 1U);
  EXPECT_EQ(m.reached, 2U);
}

TEST(Summarize, EmptyOutcomes) {
  const auto m = summarize({}, 100.0, 100.0, {}, {});
  EXPECT_EQ(m.node_count, 0U);
  EXPECT_DOUBLE_EQ(m.avg_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_energy_j, 0.0);
}

TEST(Summarize, P95DelayTracksTail) {
  std::vector<node::SensorNode> nodes;
  for (std::uint32_t i = 0; i < 20; ++i) {
    nodes.push_back(make_node(i, 10.0, 10.0 + (i == 19 ? 10.0 : 1.0)));
  }
  for (auto& n : nodes) n.meter.finalize(100.0);
  const auto m = summarize(collect_outcomes(nodes), 100.0, 100.0, {}, {});
  EXPECT_GT(m.p95_delay_s, 1.0);
  EXPECT_LE(m.p95_delay_s, 10.0);
}

}  // namespace
}  // namespace pas::metrics

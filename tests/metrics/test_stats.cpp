#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pas::metrics {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: Σ(x−5)² = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  const std::vector<double> xs{1.0, 2.5, -3.0, 7.0, 0.0, 4.4, 9.1};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.add(xs[i]);
    (i < 3 ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1U);
  b.merge(a);
  EXPECT_EQ(b.count(), 1U);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Summary, OfSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = Summary::of(xs);
  EXPECT_EQ(s.n, 4U);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_GT(s.ci95_half, 0.0);
}

TEST(Summary, OfEmptyAndSingle) {
  EXPECT_EQ(Summary::of({}).n, 0U);
  const std::vector<double> one{5.0};
  const Summary s = Summary::of(one);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(Quantile, SortedInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0 / 3.0), 20.0);
}

TEST(Quantile, UnsortedConvenienceSorts) {
  EXPECT_DOUBLE_EQ(quantile({30.0, 10.0, 20.0}, 0.5), 20.0);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW((void)quantile_sorted({}, 0.5), std::invalid_argument);
}

TEST(Quantile, ManyQuantilesShareOneSort) {
  const std::vector<double> qs{0.0, 0.5, 1.0};
  const auto out = quantiles({30.0, 10.0, 20.0}, qs);
  ASSERT_EQ(out.size(), 3U);
  EXPECT_DOUBLE_EQ(out[0], 10.0);
  EXPECT_DOUBLE_EQ(out[1], 20.0);
  EXPECT_DOUBLE_EQ(out[2], 30.0);
  EXPECT_THROW((void)quantiles({}, qs), std::invalid_argument);
}

TEST(Percentiles, OfSample) {
  // 0..100 inclusive: the interpolated pN is exactly N.
  std::vector<double> xs;
  for (int i = 100; i >= 0; --i) xs.push_back(static_cast<double>(i));
  const auto p = Percentiles::of(std::move(xs));
  EXPECT_DOUBLE_EQ(p.p50, 50.0);
  EXPECT_DOUBLE_EQ(p.p95, 95.0);
  EXPECT_DOUBLE_EQ(p.p99, 99.0);
}

TEST(Percentiles, EmptyAndSingle) {
  const auto empty = Percentiles::of(std::vector<double>{});
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95, 0.0);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
  const auto one = Percentiles::of({7.0});
  EXPECT_DOUBLE_EQ(one.p50, 7.0);
  EXPECT_DOUBLE_EQ(one.p99, 7.0);
}

}  // namespace
}  // namespace pas::metrics

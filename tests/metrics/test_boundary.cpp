#include "metrics/boundary.hpp"

#include <gtest/gtest.h>

#include "stimulus/radial_front.hpp"
#include "world/paper_setup.hpp"
#include "world/scenario.hpp"

namespace pas::metrics {
namespace {

TEST(EstimateBoundary, MidpointsBetweenCoveredAndUncovered) {
  const std::vector<geom::Vec2> pos{{0.0, 0.0}, {4.0, 0.0}, {20.0, 0.0}};
  const std::vector<bool> covered{true, false, false};
  const auto pts = estimate_boundary_points(pos, covered, 10.0);
  // Only the (0,1) pair is in range; midpoint (2,0).
  ASSERT_EQ(pts.size(), 1U);
  EXPECT_EQ(pts[0], geom::Vec2(2.0, 0.0));
}

TEST(EstimateBoundary, UniformCoverageGivesNothing) {
  const std::vector<geom::Vec2> pos{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_TRUE(estimate_boundary_points(pos, {true, true}, 10.0).empty());
  EXPECT_TRUE(estimate_boundary_points(pos, {false, false}, 10.0).empty());
}

TEST(EstimateBoundary, SizeMismatchThrows) {
  EXPECT_THROW(estimate_boundary_points({{0.0, 0.0}}, {true, false}, 5.0),
               std::invalid_argument);
}

TEST(BoundaryAccuracy, ExactPointsHaveZeroError) {
  geom::Polyline truth;
  truth.closed = true;
  truth.points = {{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  const auto acc = boundary_accuracy({{5.0, 0.0}, {10.0, 5.0}}, truth);
  EXPECT_EQ(acc.samples, 2U);
  EXPECT_NEAR(acc.mean_error_m, 0.0, 1e-12);
  EXPECT_NEAR(acc.max_error_m, 0.0, 1e-12);
}

TEST(BoundaryAccuracy, MeanAndMax) {
  geom::Polyline truth;
  truth.points = {{0.0, 0.0}, {10.0, 0.0}};
  const auto acc = boundary_accuracy({{5.0, 1.0}, {5.0, 3.0}}, truth);
  EXPECT_EQ(acc.samples, 2U);
  EXPECT_DOUBLE_EQ(acc.mean_error_m, 2.0);
  EXPECT_DOUBLE_EQ(acc.max_error_m, 3.0);
}

TEST(BoundaryAccuracy, EmptyInputsZeroed) {
  geom::Polyline truth;
  truth.points = {{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_EQ(boundary_accuracy({}, truth).samples, 0U);
  EXPECT_EQ(boundary_accuracy({{0.0, 0.0}}, geom::Polyline{}).samples, 0U);
}

// End-to-end: the boundary a PAS network reports tracks the true front to
// within about a node spacing.
TEST(BoundaryAccuracy, NetworkEstimateTracksTrueFront) {
  world::PaperSetupOverrides o;
  o.policy = core::Policy::kNeverSleep;  // zero-delay coverage knowledge
  const world::ScenarioConfig cfg = world::paper_scenario(o);
  const auto model = world::make_stimulus(cfg);
  const auto result = world::run_scenario(cfg);

  const double t = 40.0;  // mid-spread
  std::vector<bool> covered(result.positions.size());
  for (std::size_t i = 0; i < covered.size(); ++i) {
    covered[i] = result.outcomes[i].was_detected &&
                 result.outcomes[i].detected <= t;
  }
  const auto pts =
      estimate_boundary_points(result.positions, covered, cfg.radio.range_m);
  ASSERT_FALSE(pts.empty());

  const auto* radial =
      dynamic_cast<const stimulus::RadialFrontModel*>(model.get());
  ASSERT_NE(radial, nullptr);
  const auto acc = boundary_accuracy(pts, radial->boundary(t, 256));
  // Node spacing is ~7 m; the midpoint estimate should do better than that
  // on average.
  EXPECT_LT(acc.mean_error_m, 5.0);
  EXPECT_GT(acc.samples, 3U);
}

}  // namespace
}  // namespace pas::metrics

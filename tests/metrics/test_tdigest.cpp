// TDigest: accuracy bounds vs exact quantiles, memory bound, determinism.
#include "metrics/tdigest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "metrics/stats.hpp"

namespace pas::metrics {
namespace {

/// Deterministic uniform doubles in [0, 1) — SplitMix64, no libc RNG.
class Splitmix {
 public:
  explicit Splitmix(std::uint64_t seed) : state_(seed) {}
  double next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

TEST(TDigest, EmptyAndSingle) {
  TDigest d;
  EXPECT_EQ(d.count(), 0U);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
  d.add(3.5);
  EXPECT_EQ(d.count(), 1U);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 3.5);
}

TEST(TDigest, RejectsTinyCompression) {
  EXPECT_THROW(TDigest(1.0), std::invalid_argument);
}

TEST(TDigest, QuantilesTrackExactWithinRankError) {
  Splitmix rng(7);
  std::vector<double> xs;
  TDigest d;
  for (int i = 0; i < 50000; ++i) {
    // Skewed sample (squared uniform) so the tails actually stress the
    // sketch rather than a flat distribution hiding errors.
    const double u = rng.next();
    const double x = u * u * 100.0;
    xs.push_back(x);
    d.add(x);
  }
  EXPECT_EQ(d.count(), xs.size());
  // Verify by *rank*: the sketch's value at q must sit within a small rank
  // band of q in the exact sorted sample — the guarantee t-digests make
  // (value-space error can be arbitrarily large in sparse regions).
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.50, 0.95, 0.99}) {
    const double est = d.quantile(q);
    const auto below =
        std::lower_bound(sorted.begin(), sorted.end(), est) - sorted.begin();
    const double rank = static_cast<double>(below) /
                        static_cast<double>(sorted.size());
    EXPECT_NEAR(rank, q, 0.02) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(d.quantile(0.0), *sorted.begin());
  EXPECT_DOUBLE_EQ(d.quantile(1.0), sorted.back());
}

TEST(TDigest, MemoryStaysBounded) {
  TDigest d(100.0);
  Splitmix rng(11);
  for (int i = 0; i < 200000; ++i) d.add(rng.next());
  // The k1 scale bounds live centroids to O(compression).
  EXPECT_LE(d.centroid_count(), 200U);
}

TEST(TDigest, DeterministicForIdenticalInsertionOrder) {
  Splitmix rng_a(3), rng_b(3);
  TDigest a, b;
  for (int i = 0; i < 10000; ++i) a.add(rng_a.next());
  for (int i = 0; i < 10000; ++i) b.add(rng_b.next());
  for (const double q : {0.01, 0.25, 0.50, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
}

TEST(TDigest, MergeCombinesDigests) {
  Splitmix rng(5);
  std::vector<double> xs;
  TDigest left, right, whole;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next() * 10.0;
    xs.push_back(x);
    (i % 2 == 0 ? left : right).add(x);
    whole.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), xs.size());
  for (const double q : {0.50, 0.95, 0.99}) {
    EXPECT_NEAR(left.quantile(q), exact_quantile(xs, q), 0.25) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(left.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(left.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(TDigest, ExactForSmallSamples) {
  // Below the compression threshold every value is its own centroid, so
  // interpolation reproduces small samples closely (the Aggregator still
  // uses exact quantiles there; this pins the sketch's behaviour anyway).
  TDigest d;
  for (int i = 1; i <= 10; ++i) d.add(static_cast<double>(i));
  EXPECT_NEAR(d.quantile(0.5), 5.5, 0.51);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 10.0);
}

}  // namespace
}  // namespace pas::metrics

#include "net/message.hpp"

#include <gtest/gtest.h>

namespace pas::net {
namespace {

TEST(Message, RequestHasHeaderOnlySize) {
  Message m;
  m.type = MessageType::kRequest;
  EXPECT_EQ(m.size_bits(), Message::kHeaderBytes * 8);
}

TEST(Message, ResponseCarriesPayloadBytes) {
  Message m;
  m.type = MessageType::kResponse;
  EXPECT_EQ(m.size_bits(),
            (Message::kHeaderBytes + Message::kResponsePayloadBytes) * 8);
}

TEST(Message, ResponseIsBiggerThanRequest) {
  Message req, rsp;
  req.type = MessageType::kRequest;
  rsp.type = MessageType::kResponse;
  EXPECT_GT(rsp.size_bits(), req.size_bits());
}

TEST(Message, TypeNames) {
  EXPECT_STREQ(to_string(MessageType::kRequest), "REQUEST");
  EXPECT_STREQ(to_string(MessageType::kResponse), "RESPONSE");
}

TEST(Message, PayloadDefaults) {
  const ResponsePayload p;
  EXPECT_FALSE(p.velocity_valid);
  EXPECT_EQ(p.predicted_arrival, sim::kNever);
  EXPECT_EQ(p.detected_at, sim::kNever);
}

}  // namespace
}  // namespace pas::net

#include "net/mac.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/network.hpp"

namespace pas::net {
namespace {

/// Chain topology 0 -- 1 -- 2 (spacing 8 m, range 10 m): 0 and 2 are hidden
/// from each other, the canonical collision geometry.
struct MacFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::SeedSequence seeds{42};
  std::vector<geom::Vec2> positions{{0.0, 0.0}, {8.0, 0.0}, {16.0, 0.0}};
  RadioConfig radio{};
  Network network{simulator, positions, radio,
                  std::make_shared<PerfectChannel>(), seeds};
  SlottedLplMac mac{simulator, network};

  /// Workspace order: mac.reset, then attach (attach installs deliver and
  /// forwards listening/failed transitions; reset clears hooks).
  void arm(const MacConfig& config) {
    mac.reset(config, seeds);
    network.attach_mac(&mac);
  }

  static Message request() {
    Message m;
    m.type = MessageType::kRequest;
    return m;
  }

  [[nodiscard]] double on_air_s(const Message& m) const {
    return static_cast<double>(m.size_bits()) / radio.data_rate_bps;
  }
};

TEST(MacConfig, ValidationRejectsDegenerateValues) {
  MacConfig bad;
  bad.slot_period_s = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = MacConfig{};
  bad.cca_s = bad.slot_period_s;  // CCA must fit inside a slot
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = MacConfig{};
  bad.max_attempts = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = MacConfig{};
  bad.backoff_unit_s = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  MacConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST_F(MacFixture, SlotPhasesAreSeededAndInRange) {
  MacConfig config;
  arm(config);
  std::vector<double> first;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const double p = mac.slot_phase(i);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, config.slot_period_s);
    first.push_back(p);
  }
  // Same seed → same phases; the draw must be reproducible across resets.
  mac.reset(config, seeds);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(mac.slot_phase(i), first[i]);
  }
  // A different master seed must move at least one phase.
  const sim::SeedSequence other(43);
  mac.reset(config, other);
  bool any_differ = false;
  for (std::uint32_t i = 0; i < 3; ++i) {
    any_differ |= mac.slot_phase(i) != first[i];
  }
  EXPECT_TRUE(any_differ);
}

TEST_F(MacFixture, NextSampleTimeIsStrictlyAfterAndPeriodic) {
  MacConfig config;
  arm(config);
  const double per = config.slot_period_s;
  for (const double after : {0.0, 0.05, 1.0, 123.456}) {
    const sim::Time t = mac.next_sample_time(1, after);
    EXPECT_GT(t, after);
    EXPECT_LE(t - after, per + 1e-12);
    // t sits on the node's slot grid: phase + k * period.
    const double k = (t - mac.slot_phase(1)) / per;
    EXPECT_NEAR(k, std::round(k), 1e-9);
  }
  // Asking exactly at a sample time returns the *next* slot, not the same.
  const sim::Time s = mac.next_sample_time(1, 0.0);
  EXPECT_GT(mac.next_sample_time(1, s), s);
}

TEST_F(MacFixture, UnicastToAwakeReceiverUsesShortPreamble) {
  MacConfig config;
  arm(config);
  int received = 0;
  sim::Time delivered_at = -1.0;
  network.set_rx_handler(1, [&](const Message&) {
    ++received;
    delivered_at = simulator.now();
  });
  bool ok = false;
  mac.unicast(0, 1, request(), [&](bool delivered) { ok = delivered; });
  simulator.run();
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(ok);
  EXPECT_EQ(mac.stats().rendezvous_tx, 0ULL);
  EXPECT_EQ(mac.stats().data_tx, 1ULL);
  EXPECT_EQ(mac.stats().acks, 1ULL);
  // Short preamble: one CCA plus time-on-air, nothing else.
  EXPECT_NEAR(delivered_at, config.cca_s + on_air_s(request()), 1e-9);
}

TEST_F(MacFixture, RendezvousUnicastWaitsForReceiverWakeSlot) {
  MacConfig config;
  arm(config);
  network.set_listening(1, false);  // protocol-asleep: LPL sampling
  int received = 0;
  sim::Time delivered_at = -1.0;
  network.set_rx_handler(1, [&](const Message&) {
    ++received;
    delivered_at = simulator.now();
  });
  const sim::Time wake = mac.next_sample_time(1, 0.0);
  mac.unicast(0, 1, request(), SlottedLplMac::SendCallback{});
  // run_until, not run(): a sleeping node's slot sampler re-arms forever.
  simulator.run_until(wake + 0.05);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(mac.stats().rendezvous_tx, 1ULL);
  EXPECT_EQ(mac.stats().lpl_wakeups, 1ULL);
  // The preamble stretches past the receiver's wake slot; data follows it.
  EXPECT_NEAR(delivered_at, wake + config.cca_s + on_air_s(request()), 1e-9);
}

TEST_F(MacFixture, RendezvousEnergyChargedThroughHooks) {
  MacConfig config;
  arm(config);
  network.set_listening(1, false);
  double preamble_s = 0.0, tx_bits = 0.0, rx_listen_s = 0.0, rx_cca_s = 0.0;
  mac.set_preamble_hook([&](std::uint32_t node, sim::Duration s) {
    EXPECT_EQ(node, 0U);
    preamble_s += s;
  });
  mac.set_tx_hook([&](std::uint32_t node, std::size_t bits) {
    EXPECT_EQ(node, 0U);
    tx_bits += static_cast<double>(bits);
  });
  mac.set_listen_hook([&](std::uint32_t node, sim::Duration s) {
    if (node == 1) rx_listen_s += s;
  });
  mac.set_cca_hook([&](std::uint32_t node, sim::Duration s) {
    if (node == 1) rx_cca_s += s;
  });
  const sim::Time wake = mac.next_sample_time(1, 0.0);
  mac.unicast(0, 1, request(), SlottedLplMac::SendCallback{});
  simulator.run_until(wake + 0.05);
  // Sender: preamble covers [now, receiver wake + cca]; data bits on top.
  EXPECT_NEAR(preamble_s, wake + config.cca_s, 1e-9);
  EXPECT_DOUBLE_EQ(tx_bits, static_cast<double>(request().size_bits()));
  // Receiver: the wake-slot sample that caught the preamble paid one CCA and
  // then held the radio up until the data ended.
  EXPECT_NEAR(rx_cca_s, config.cca_s, 1e-9);
  EXPECT_NEAR(rx_listen_s, config.cca_s + on_air_s(request()), 1e-9);
}

TEST_F(MacFixture, SleepingNodeSamplesOncePerSlot) {
  MacConfig config;
  arm(config);
  network.set_listening(1, false);
  simulator.run_until(10.0);
  // ~100 slots in 10 s at slot_period 0.1 (±1 for phase alignment).
  EXPECT_GE(mac.stats().lpl_samples, 99ULL);
  EXPECT_LE(mac.stats().lpl_samples, 101ULL);
  EXPECT_EQ(mac.stats().lpl_wakeups, 0ULL);
  // Waking cancels the sampling; no further samples accrue.
  network.set_listening(1, true);
  const std::uint64_t at_wake = mac.stats().lpl_samples;
  simulator.run_until(20.0);
  EXPECT_EQ(mac.stats().lpl_samples, at_wake);
}

TEST_F(MacFixture, SenderBacksOffWhileMediumBusy) {
  MacConfig config;
  arm(config);
  int received = 0;
  network.set_rx_handler(2, [&](const Message&) { ++received; });
  network.set_rx_handler(0, [&](const Message&) {});
  // Node 1's transmission occupies the medium; node 0's CCA must find it
  // busy and retreat instead of corrupting it.
  mac.unicast(1, 2, request(), SlottedLplMac::SendCallback{});
  simulator.schedule_at(config.cca_s + 1e-4, [&] {
    mac.unicast(0, 1, request(), SlottedLplMac::SendCallback{});
  });
  simulator.run();
  EXPECT_EQ(received, 1);
  EXPECT_GE(mac.stats().cca_busy, 1ULL);
  EXPECT_GE(mac.stats().backoffs, 1ULL);
  EXPECT_EQ(mac.stats().collisions, 0ULL);
  EXPECT_EQ(mac.stats().delivered, 2ULL);  // both frames ultimately arrive
}

TEST_F(MacFixture, HiddenTerminalsCollideDespiteCca) {
  // 0 and 2 cannot hear each other: both pass CCA and transmit into node 1
  // simultaneously. With a single attempt both frames must die — this is
  // the reference collision model (no capture at equal start times).
  MacConfig config;
  config.max_attempts = 1;
  arm(config);
  int received = 0;
  network.set_rx_handler(1, [&](const Message&) { ++received; });
  int failures = 0;
  const auto count_failure = [&](bool delivered) {
    if (!delivered) ++failures;
  };
  mac.unicast(0, 1, request(), count_failure);
  mac.unicast(2, 1, request(), count_failure);
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(failures, 2);
  EXPECT_GE(mac.stats().collisions, 1ULL);
  EXPECT_EQ(mac.stats().delivered, 0ULL);
  EXPECT_EQ(mac.stats().drops_retry, 2ULL);
}

TEST_F(MacFixture, RetriesResolveHiddenTerminalCollision) {
  MacConfig config;  // default max_attempts = 5
  arm(config);
  int received = 0;
  network.set_rx_handler(1, [&](const Message&) { ++received; });
  mac.unicast(0, 1, request(), SlottedLplMac::SendCallback{});
  mac.unicast(2, 1, request(), SlottedLplMac::SendCallback{});
  simulator.run();
  // Independent backoff draws desynchronise the senders; both frames land.
  EXPECT_EQ(received, 2);
  EXPECT_GE(mac.stats().collisions, 1ULL);
  EXPECT_GE(mac.stats().retries, 1ULL);
  EXPECT_EQ(mac.stats().delivered, 2ULL);
}

TEST_F(MacFixture, EstablishedReceptionSurvivesLateInterferer) {
  MacConfig config;
  config.capture_margin_s = 1e-4;
  arm(config);
  int from0 = 0;
  network.set_rx_handler(1, [&](const Message& m) {
    if (m.sender == 0) ++from0;
  });
  mac.unicast(0, 1, request(), SlottedLplMac::SendCallback{});
  // 0's data starts at cca_s; 2 starts transmitting well past the capture
  // margin into it. The established reception survives (capture effect).
  simulator.schedule_at(config.cca_s + 2e-4, [&] {
    mac.unicast(2, 1, request(), SlottedLplMac::SendCallback{});
  });
  simulator.run();
  EXPECT_EQ(from0, 1);
  EXPECT_GE(mac.stats().captures, 1ULL);
}

TEST_F(MacFixture, ContentionOutcomeIsSeedDeterministic) {
  const auto run_once = [](std::uint64_t seed) {
    sim::Simulator simulator;
    const sim::SeedSequence seeds(seed);
    const std::vector<geom::Vec2> positions{
        {0.0, 0.0}, {8.0, 0.0}, {16.0, 0.0}};
    Network network(simulator, positions, RadioConfig{},
                    std::make_shared<PerfectChannel>(), seeds);
    SlottedLplMac mac(simulator, network);
    mac.reset(MacConfig{}, seeds);
    network.attach_mac(&mac);
    std::vector<sim::Time> deliveries;
    network.set_rx_handler(1, [&](const Message&) {
      deliveries.push_back(simulator.now());
    });
    Message m;
    for (int round = 0; round < 20; ++round) {
      simulator.schedule_at(round * 0.01, [&mac, m] {
        mac.unicast(0, 1, m, SlottedLplMac::SendCallback{});
        mac.unicast(2, 1, m, SlottedLplMac::SendCallback{});
      });
    }
    simulator.run();
    return std::pair{mac.stats(), deliveries};
  };
  const auto [stats_a, times_a] = run_once(7);
  const auto [stats_b, times_b] = run_once(7);
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(times_a, times_b);
  // The contended schedule must actually exercise the backoff machinery.
  EXPECT_GE(stats_a.backoffs + stats_a.collisions, 1ULL);
}

TEST_F(MacFixture, BroadcastReachesOnlyListeningRadios) {
  MacConfig config;
  arm(config);
  network.set_listening(0, false);
  network.set_listening(2, false);
  std::vector<std::uint32_t> received;
  for (std::uint32_t i = 0; i < 3; ++i) {
    network.set_rx_handler(i, [&received, i](const Message&) {
      received.push_back(i);
    });
  }
  // With a short preamble only awake radios catch a broadcast — node 1
  // transmits into two sleepers and (slot luck aside) nobody hears it.
  // Run well clear of any wake slot by broadcasting right after both
  // sleepers sampled.
  const sim::Time gap =
      std::max(mac.next_sample_time(0, 0.0), mac.next_sample_time(2, 0.0)) +
      1e-3;
  Message m = request();
  simulator.schedule_at(gap, [&] { network.broadcast(1, m); });
  simulator.run_until(gap + 0.01);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(mac.stats().broadcasts, 1ULL);
}

TEST_F(MacFixture, FailedSenderReportsFailureWithoutTransmitting) {
  MacConfig config;
  arm(config);
  network.set_failed(0);
  bool called = false, outcome = true;
  mac.unicast(0, 1, request(), [&](bool delivered) {
    called = true;
    outcome = delivered;
  });
  simulator.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(outcome);
  EXPECT_EQ(mac.stats().data_tx, 0ULL);
}

TEST_F(MacFixture, UnicastValidatesReceiver) {
  arm(MacConfig{});
  EXPECT_THROW(mac.unicast(0, 0, request(), {}), std::invalid_argument);
  EXPECT_THROW(mac.unicast(0, 99, request(), {}), std::invalid_argument);
}

}  // namespace
}  // namespace pas::net

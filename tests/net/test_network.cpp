#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pas::net {
namespace {

struct NetworkFixture : ::testing::Test {
  // Chain topology: 0 -- 1 -- 2, spacing 8 m, range 10 m (0 and 2 are 16 m
  // apart, out of range).
  sim::Simulator simulator;
  sim::SeedSequence seeds{42};
  std::vector<geom::Vec2> positions{{0.0, 0.0}, {8.0, 0.0}, {16.0, 0.0}};
  RadioConfig config{};
  Network network{simulator, positions, config,
                  std::make_shared<PerfectChannel>(), seeds};
};

TEST_F(NetworkFixture, NeighborListsFromRange) {
  EXPECT_EQ(network.neighbors_of(0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(network.neighbors_of(1), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(network.neighbors_of(2), (std::vector<std::uint32_t>{1}));
  EXPECT_NEAR(network.mean_degree(), 4.0 / 3.0, 1e-12);
}

TEST_F(NetworkFixture, BroadcastReachesOnlyInRangeNeighbors) {
  std::vector<std::uint32_t> received;
  for (std::uint32_t i = 0; i < 3; ++i) {
    network.set_rx_handler(i, [&received, i](const Message&) {
      received.push_back(i);
    });
  }
  Message m;
  m.type = MessageType::kRequest;
  network.broadcast(0, m);
  simulator.run();
  EXPECT_EQ(received, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(network.stats().deliveries, 1U);
}

TEST_F(NetworkFixture, DeliveryIsDelayedByOnAirTime) {
  sim::Time delivered_at = -1.0;
  network.set_rx_handler(1, [&](const Message&) {
    delivered_at = simulator.now();
  });
  Message m;
  m.type = MessageType::kResponse;
  network.broadcast(0, m);
  simulator.run();
  const double on_air = static_cast<double>(m.size_bits()) / 250e3;
  EXPECT_GE(delivered_at, on_air);
  EXPECT_LE(delivered_at, on_air + config.max_jitter_s + 1e-3);
}

TEST_F(NetworkFixture, MessageStampedWithSenderAndTime) {
  Message got;
  network.set_rx_handler(1, [&](const Message& m) { got = m; });
  simulator.schedule_at(5.0, [&] {
    Message m;
    m.type = MessageType::kRequest;
    network.broadcast(0, m);
  });
  simulator.run();
  EXPECT_EQ(got.sender, 0U);
  EXPECT_DOUBLE_EQ(got.sent_at, 5.0);
}

TEST_F(NetworkFixture, SleepingReceiverMissesPacket) {
  int received = 0;
  network.set_rx_handler(1, [&](const Message&) { ++received; });
  network.set_listening(1, false);
  Message m;
  network.broadcast(0, m);
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().dropped_not_listening, 1U);
}

TEST_F(NetworkFixture, ListeningCheckedAtDeliveryTime) {
  // Receiver wakes between send and delivery: packet arrives.
  int received = 0;
  network.set_rx_handler(1, [&](const Message&) { ++received; });
  network.set_listening(1, false);
  Message m;
  network.broadcast(0, m);
  simulator.schedule_at(1e-7, [&] { network.set_listening(1, true); });
  simulator.run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkFixture, FailedNodesNeitherSendNorReceive) {
  int received = 0;
  network.set_rx_handler(1, [&](const Message&) { ++received; });
  network.set_failed(0);
  Message m;
  network.broadcast(0, m);
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().blocked_sender_failed, 1U);

  network.set_failed(1);
  network.broadcast(2, m);
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().dropped_failed, 1U);
}

TEST_F(NetworkFixture, EnergyHooksFire) {
  std::vector<std::pair<std::uint32_t, std::size_t>> tx, rx;
  network.set_tx_hook([&](std::uint32_t n, std::size_t b) { tx.push_back({n, b}); });
  network.set_rx_hook([&](std::uint32_t n, std::size_t b) { rx.push_back({n, b}); });
  Message m;
  m.type = MessageType::kResponse;
  network.broadcast(1, m);
  simulator.run();
  ASSERT_EQ(tx.size(), 1U);
  EXPECT_EQ(tx[0].first, 1U);
  EXPECT_EQ(tx[0].second, m.size_bits());
  ASSERT_EQ(rx.size(), 2U);  // nodes 0 and 2
}

TEST_F(NetworkFixture, ChainIsConnected) {
  EXPECT_TRUE(network.connected());
}

TEST(Network, DisconnectedTopologyDetected) {
  sim::Simulator simulator;
  const sim::SeedSequence seeds(1);
  const std::vector<geom::Vec2> positions{{0.0, 0.0}, {100.0, 0.0}};
  Network network(simulator, positions, RadioConfig{},
                  std::make_shared<PerfectChannel>(), seeds);
  EXPECT_FALSE(network.connected());
}

TEST(Network, LossyChannelDropsStatistically) {
  sim::Simulator simulator;
  const sim::SeedSequence seeds(9);
  const std::vector<geom::Vec2> positions{{0.0, 0.0}, {5.0, 0.0}};
  Network network(simulator, positions, RadioConfig{},
                  std::make_shared<BernoulliLossChannel>(0.5), seeds);
  int received = 0;
  network.set_rx_handler(1, [&](const Message&) { ++received; });
  for (int i = 0; i < 1000; ++i) {
    Message m;
    network.broadcast(0, m);
  }
  simulator.run();
  EXPECT_GT(received, 400);
  EXPECT_LT(received, 600);
  EXPECT_EQ(network.stats().dropped_channel,
            1000U - static_cast<unsigned>(received));
}

TEST(Network, ValidationErrors) {
  sim::Simulator simulator;
  const sim::SeedSequence seeds(1);
  EXPECT_THROW(Network(simulator, {}, RadioConfig{},
                       std::make_shared<PerfectChannel>(), seeds),
               std::invalid_argument);
  RadioConfig bad;
  bad.range_m = 0.0;
  EXPECT_THROW(Network(simulator, {{0.0, 0.0}}, bad,
                       std::make_shared<PerfectChannel>(), seeds),
               std::invalid_argument);
  EXPECT_THROW(Network(simulator, {{0.0, 0.0}}, RadioConfig{}, nullptr, seeds),
               std::invalid_argument);
}

TEST(Network, BroadcastFromUnknownSenderThrows) {
  sim::Simulator simulator;
  const sim::SeedSequence seeds(1);
  Network network(simulator, {{0.0, 0.0}}, RadioConfig{},
                  std::make_shared<PerfectChannel>(), seeds);
  Message m;
  EXPECT_THROW(network.broadcast(5, m), std::out_of_range);
}

}  // namespace
}  // namespace pas::net

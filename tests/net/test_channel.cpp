#include "net/channel.hpp"

#include <gtest/gtest.h>

namespace pas::net {
namespace {

TEST(PerfectChannel, AlwaysDelivers) {
  PerfectChannel ch;
  sim::Pcg32 rng(1, 1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ch.deliver(0, 1, rng));
}

TEST(BernoulliChannel, RejectsBadLoss) {
  EXPECT_THROW(BernoulliLossChannel{-0.1}, std::invalid_argument);
  EXPECT_THROW(BernoulliLossChannel{1.0}, std::invalid_argument);
}

TEST(BernoulliChannel, ZeroLossDeliversAll) {
  BernoulliLossChannel ch(0.0);
  sim::Pcg32 rng(1, 1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ch.deliver(0, 1, rng));
}

TEST(BernoulliChannel, LossRateApproximatesP) {
  BernoulliLossChannel ch(0.3);
  sim::Pcg32 rng(7, 7);
  int delivered = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (ch.deliver(0, 1, rng)) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.7, 0.01);
}

TEST(GilbertElliott, RejectsBadProbabilities) {
  GilbertElliottChannel::Params p;
  p.loss_bad = 1.5;
  EXPECT_THROW(GilbertElliottChannel{p}, std::invalid_argument);
}

TEST(GilbertElliott, LongRunLossBetweenGoodAndBad) {
  GilbertElliottChannel::Params p;
  p.p_good_to_bad = 0.1;
  p.p_bad_to_good = 0.1;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  GilbertElliottChannel ch(p);
  sim::Pcg32 rng(11, 13);
  int delivered = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (ch.deliver(0, 1, rng)) ++delivered;
  }
  // Symmetric chain => ~50% time in each state => ~50% delivery.
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.5, 0.03);
}

TEST(GilbertElliott, LossIsBursty) {
  // With sticky states, consecutive outcomes correlate: count runs; a bursty
  // process has far fewer runs than an i.i.d. one at the same loss rate.
  GilbertElliottChannel::Params p;
  p.p_good_to_bad = 0.02;
  p.p_bad_to_good = 0.02;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  GilbertElliottChannel ch(p);
  sim::Pcg32 rng(5, 5);
  constexpr int kN = 20000;
  int runs = 1;
  bool prev = ch.deliver(0, 1, rng);
  for (int i = 1; i < kN; ++i) {
    const bool cur = ch.deliver(0, 1, rng);
    if (cur != prev) ++runs;
    prev = cur;
  }
  // i.i.d. at 50% would give ~kN/2 runs; the sticky chain gives ~kN·0.02.
  EXPECT_LT(runs, kN / 8);
}

TEST(GilbertElliott, LinksEvolveIndependently) {
  GilbertElliottChannel::Params p;
  p.p_good_to_bad = 1.0;  // first delivery flips link to bad
  p.p_bad_to_good = 0.0;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  GilbertElliottChannel ch(p);
  sim::Pcg32 rng(3, 3);
  EXPECT_FALSE(ch.deliver(0, 1, rng));  // link (0,1) now bad
  // A different link starts fresh (also flips to bad before its first
  // delivery under p_good_to_bad = 1, so it also drops — but the map must
  // hold two independent entries rather than crash or alias).
  EXPECT_FALSE(ch.deliver(2, 3, rng));
}

}  // namespace
}  // namespace pas::net

#include "net/collection.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace pas::net {
namespace {

/// Line topology 0 -- 1 -- 2 -- 3 -- 4 (spacing 8 m, range 10 m) inside a
/// region whose lo corner sits at node 0 and whose center is nearest node 2.
struct CollectionFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::SeedSequence seeds{42};
  std::vector<geom::Vec2> positions{
      {0.0, 0.0}, {8.0, 0.0}, {16.0, 0.0}, {24.0, 0.0}, {32.0, 0.0}};
  geom::Aabb region{{0.0, 0.0}, {32.0, 8.0}};
  RadioConfig radio{};
  Network network{simulator, positions, radio,
                  std::make_shared<PerfectChannel>(), seeds};
  SlottedLplMac mac{simulator, network};
  Collection collection{simulator, network, mac};

  void arm(SinkPlacement placement, bool relay_through_sleeping = true,
           CollectionConfig extra = {}) {
    mac.reset(MacConfig{}, seeds);
    network.attach_mac(&mac);
    extra.sink_placement = placement;
    collection.reset(extra, relay_through_sleeping, region, nullptr);
  }
};

TEST_F(CollectionFixture, SinkPlacementPicksNearestNode) {
  arm(SinkPlacement::kCorner);
  EXPECT_EQ(collection.sink(), 0U);  // region.lo = (0,0) — node 0
  arm(SinkPlacement::kCenter);
  EXPECT_EQ(collection.sink(), 2U);  // center (16,4) — node 2
  arm(SinkPlacement::kEdge);
  EXPECT_EQ(collection.sink(), 2U);  // bottom-edge midpoint (16,0)
}

TEST_F(CollectionFixture, BfsTreeDepthsUphillAndBackbone) {
  arm(SinkPlacement::kCorner);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(collection.depth(i), i);
  }
  // On a line every node's only uphill neighbor is its parent.
  EXPECT_TRUE(collection.uphill(0).empty());
  for (std::uint32_t i = 1; i < 5; ++i) {
    EXPECT_EQ(collection.uphill(i), (std::vector<std::uint32_t>{i - 1}));
  }
  // Backbone: sink + internal tree nodes. The far end (4) is a leaf.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(collection.is_backbone(i));
  }
  EXPECT_FALSE(collection.is_backbone(4));
  EXPECT_EQ(collection.unreachable_count(), 0U);
}

TEST_F(CollectionFixture, AlertTravelsHopByHopToTheSink) {
  arm(SinkPlacement::kCorner);
  collection.originate(4, /*detected_at=*/0.0, /*predicted_arrival=*/9.0);
  simulator.run();
  ASSERT_EQ(collection.records().size(), 1U);
  const auto& r = collection.records()[0];
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.origin, 4U);
  EXPECT_EQ(r.hops, 4U);
  EXPECT_EQ(r.path, (std::vector<std::uint32_t>{4, 3, 2, 1, 0}));
  EXPECT_GT(r.completed_at, r.detected_at);
  EXPECT_EQ(collection.stats().delivered, 1ULL);
  EXPECT_EQ(collection.stats().forwarded, 4ULL);
  EXPECT_EQ(collection.in_flight(), 0U);
  EXPECT_GT(collection.stats().sum_delay_s, 0.0);
}

TEST_F(CollectionFixture, DetectionAtTheSinkDeliversInstantly) {
  arm(SinkPlacement::kCorner);
  collection.originate(0, 1.5, 2.0);
  ASSERT_EQ(collection.records().size(), 1U);
  EXPECT_TRUE(collection.records()[0].delivered);
  EXPECT_EQ(collection.records()[0].hops, 0U);
  EXPECT_EQ(mac.stats().unicasts, 0ULL);
}

TEST_F(CollectionFixture, FallbackToPredictedWhenNoRelayPermitted) {
  // DutyCycle-style policy: sleeping nodes refuse to relay. With the whole
  // uphill path asleep, the Sleep-Route fallback answers with the
  // prediction instead of forwarding the measurement.
  arm(SinkPlacement::kCorner, /*relay_through_sleeping=*/false);
  network.set_listening(3, false);
  collection.originate(4, 0.0, 7.25);
  simulator.run_until(1.0);
  ASSERT_EQ(collection.records().size(), 1U);
  const auto& r = collection.records()[0];
  EXPECT_FALSE(r.delivered);
  EXPECT_DOUBLE_EQ(r.predicted_arrival, 7.25);
  EXPECT_EQ(collection.stats().delivered_predicted, 1ULL);
  EXPECT_EQ(collection.stats().delivered, 0ULL);
  EXPECT_EQ(mac.stats().unicasts, 0ULL);  // never even tried the hop
}

TEST_F(CollectionFixture, SleepingBackboneRelaysThroughRendezvous) {
  // Same sleeper, but PAS-style relay participation: the MAC pays the LPL
  // rendezvous to wake node 3 and the measurement still reaches the sink.
  arm(SinkPlacement::kCorner, /*relay_through_sleeping=*/true);
  network.set_listening(3, false);
  collection.originate(4, 0.0, 7.25);
  simulator.run_until(1.0);
  ASSERT_EQ(collection.records().size(), 1U);
  EXPECT_TRUE(collection.records()[0].delivered);
  EXPECT_GE(mac.stats().rendezvous_tx, 1ULL);
  EXPECT_EQ(collection.stats().delivered, 1ULL);
}

TEST_F(CollectionFixture, TtlDropsLoopingAlerts) {
  CollectionConfig cfg;
  cfg.max_hops = 2;
  arm(SinkPlacement::kCorner, true, cfg);
  collection.originate(4, 0.0, 1.0);
  simulator.run();
  EXPECT_EQ(collection.stats().dropped_ttl, 1ULL);
  EXPECT_EQ(collection.stats().delivered, 0ULL);
  EXPECT_TRUE(collection.records().empty());
}

TEST_F(CollectionFixture, FailedNextHopIsSkippedNotWaitedOn) {
  // 4 → 3 fails permanently; node 4 has no other uphill neighbor, so the
  // alert completes as a predicted-value fallback instead of hanging.
  arm(SinkPlacement::kCorner);
  network.set_failed(3);
  collection.originate(4, 0.0, 3.0);
  simulator.run();
  ASSERT_EQ(collection.records().size(), 1U);
  EXPECT_FALSE(collection.records()[0].delivered);
  EXPECT_EQ(collection.stats().delivered_predicted, 1ULL);
}

TEST(Collection, DisconnectedNodeFallsBackImmediately) {
  sim::Simulator simulator;
  const sim::SeedSequence seeds(5);
  // Node 2 is 100 m away: out of range of everyone, depth = kNoDepth.
  const std::vector<geom::Vec2> positions{
      {0.0, 0.0}, {8.0, 0.0}, {100.0, 0.0}};
  Network network(simulator, positions, RadioConfig{},
                  std::make_shared<PerfectChannel>(), seeds);
  SlottedLplMac mac(simulator, network);
  mac.reset(MacConfig{}, seeds);
  network.attach_mac(&mac);
  Collection collection(simulator, network, mac);
  collection.reset(CollectionConfig{}, true, {{0.0, 0.0}, {100.0, 8.0}},
                   nullptr);
  EXPECT_EQ(collection.unreachable_count(), 1U);
  EXPECT_EQ(collection.depth(2), Collection::kNoDepth);
  collection.originate(2, 0.0, 4.0);
  simulator.run();
  ASSERT_EQ(collection.records().size(), 1U);
  EXPECT_FALSE(collection.records()[0].delivered);
}

TEST(CollectionConfig, ValidationRejectsZeroLimits) {
  CollectionConfig bad;
  bad.max_hops = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = CollectionConfig{};
  bad.node_queue_limit = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace pas::net

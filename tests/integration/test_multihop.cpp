// Multihop collection: golden-seed pinning and the routing invariant sweep.
//
// The mac-off golden digests (test_golden_trace.cpp) prove the MAC's
// *absence* changes nothing; these tests pin the MAC-on event order the same
// way — the slotted LPL rendezvous, backoff and collision schedule at a
// fixed seed is part of the determinism contract (docs/ARCHITECTURE.md) —
// and sweep the structural invariant every delivered alert must satisfy:
// a connected, strictly-uphill path from its origin to the sink.
//
// If a deliberate semantic change to the MAC or collection layer invalidates
// the pinned values, re-record them (the failure message prints the new
// numbers) and say so in the commit message.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "net/collection.hpp"
#include "net/mac.hpp"
#include "net/network.hpp"
#include "world/paper_setup.hpp"
#include "world/scenario.hpp"

namespace pas {
namespace {

/// Same order-sensitive FNV-1a as test_golden_trace.cpp.
std::uint64_t trace_digest(const sim::TraceLog& log) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& e : log.events()) {
    mix(std::bit_cast<std::uint64_t>(e.time), 8);
    mix(static_cast<std::uint64_t>(e.category), 1);
    mix(e.node, 4);
  }
  return h;
}

world::ScenarioConfig multihop_scenario(core::Policy policy,
                                        std::uint64_t seed) {
  world::PaperSetupOverrides o;
  o.policy = policy;
  o.seed = seed;
  auto cfg = world::paper_scenario(o);
  cfg.mac.enabled = true;
  cfg.collection.sink_placement = net::SinkPlacement::kCorner;
  cfg.enable_trace = true;
  return cfg;
}

TEST(GoldenMultihop, PasMacSeed7) {
  const auto result =
      run_scenario(multihop_scenario(core::Policy::kPas, 7));
  EXPECT_EQ(result.trace.size(), 3406ULL);
  EXPECT_EQ(trace_digest(result.trace), 13528915297150654845ULL);
  // PAS suppresses redundant detections (covered nodes stay quiet), so only
  // a subset of the 30 nodes ever originates an alert.
  EXPECT_EQ(result.metrics.collection.originated, 10ULL);
  EXPECT_EQ(result.metrics.collection.delivered, 10ULL);
  EXPECT_EQ(result.metrics.collection.delivered_predicted, 0ULL);
  EXPECT_EQ(result.metrics.mac.rendezvous_tx, 1ULL);
  // Synchronized response bursts make broadcasts collide heavily — exactly
  // the contention cost the coin-flip model hides.
  EXPECT_EQ(result.metrics.mac.collisions, 373ULL);
}

TEST(GoldenMultihop, DutyCycleMacSeed5) {
  const auto result =
      run_scenario(multihop_scenario(core::Policy::kDutyCycle, 5));
  EXPECT_EQ(result.trace.size(), 1235ULL);
  EXPECT_EQ(trace_digest(result.trace), 17812644017731850357ULL);
  EXPECT_EQ(result.metrics.collection.originated, 19ULL);
  // DutyCycle opts out of sleeping-backbone relay
  // (wants_collection_relay() == false), so alerts that hit a sleeping
  // next hop fall back to the predicted value instead of rendezvousing.
  EXPECT_EQ(result.metrics.collection.delivered, 17ULL);
  EXPECT_EQ(result.metrics.collection.delivered_predicted, 2ULL);
  EXPECT_EQ(result.metrics.mac.rendezvous_tx, 0ULL);
}

TEST(GoldenMultihop, MacRunsAreSeedDeterministic) {
  const auto cfg = multihop_scenario(core::Policy::kPas, 11);
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(trace_digest(a.trace), trace_digest(b.trace));
  EXPECT_EQ(a.metrics.mac, b.metrics.mac);
  EXPECT_EQ(a.metrics.collection, b.metrics.collection);
  EXPECT_DOUBLE_EQ(a.metrics.avg_energy_j, b.metrics.avg_energy_j);
}

/// Net-layer invariant harness: a 7×7 grid under randomized sleep schedules
/// and staggered originations. Returns the Collection for inspection.
struct InvariantWorld {
  sim::Simulator simulator;
  sim::SeedSequence seeds;
  std::vector<geom::Vec2> positions;
  net::Network network;
  net::SlottedLplMac mac;
  net::Collection collection;

  static std::vector<geom::Vec2> grid_49() {
    std::vector<geom::Vec2> p;
    for (int y = 0; y < 7; ++y) {
      for (int x = 0; x < 7; ++x) {
        p.push_back({x * 12.0, y * 12.0});
      }
    }
    return p;
  }

  explicit InvariantWorld(std::uint64_t seed)
      : seeds(seed),
        positions(grid_49()),
        network(simulator, positions, net::RadioConfig{.range_m = 14.0},
                std::make_shared<net::PerfectChannel>(), seeds),
        mac(simulator, network),
        collection(simulator, network, mac) {
    mac.reset(net::MacConfig{}, seeds);
    network.attach_mac(&mac);
    collection.reset(net::CollectionConfig{}, /*relay_through_sleeping=*/true,
                     {{0.0, 0.0}, {72.0, 72.0}}, nullptr);
  }

  /// Random sleep toggles + originations over [0, horizon), then run.
  void churn(double horizon) {
    sim::Pcg32 rng = seeds.stream(sim::SeedSequence::kUser);
    for (std::uint32_t i = 0; i < 49; ++i) {
      // Each node flips its radio a few times; roughly half start asleep.
      bool listening = rng.uniform01() < 0.5;
      network.set_listening(i, listening);
      for (int flip = 0; flip < 4; ++flip) {
        listening = !listening;
        simulator.schedule_at(rng.uniform(0.0, horizon),
                              [this, i, listening] {
                                if (!network.failed(i)) {
                                  network.set_listening(i, listening);
                                }
                              });
      }
    }
    for (int a = 0; a < 25; ++a) {
      const auto origin =
          static_cast<std::uint32_t>(rng.uniform_int(0, 48));
      simulator.schedule_at(rng.uniform(0.0, horizon * 0.8),
                            [this, origin] {
                              collection.originate(origin, simulator.now(),
                                                   simulator.now() + 5.0);
                            });
    }
    simulator.run_until(horizon);
  }

  [[nodiscard]] bool are_neighbors(std::uint32_t a, std::uint32_t b) const {
    const auto& n = network.neighbors_of(a);
    return std::find(n.begin(), n.end(), b) != n.end();
  }
};

TEST(MultihopInvariants, DeliveredPathsAreConnectedAndStrictlyUphill) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    InvariantWorld w(seed);
    w.churn(30.0);
    EXPECT_GT(w.collection.stats().delivered, 0ULL) << "seed " << seed;
    for (const auto& r : w.collection.records()) {
      ASSERT_FALSE(r.path.empty());
      EXPECT_EQ(r.path.front(), r.origin);
      if (!r.delivered) continue;
      EXPECT_EQ(r.path.back(), w.collection.sink());
      EXPECT_EQ(r.path.size(), static_cast<std::size_t>(r.hops) + 1);
      for (std::size_t h = 1; h < r.path.size(); ++h) {
        // Every hop crossed a real radio link...
        EXPECT_TRUE(w.are_neighbors(r.path[h - 1], r.path[h]))
            << "seed " << seed << " alert " << r.alert_id << " hop " << h;
        // ...and moved strictly closer to the sink (uphill rule = no loops).
        EXPECT_LT(w.collection.depth(r.path[h]),
                  w.collection.depth(r.path[h - 1]));
      }
      EXPECT_GE(r.completed_at, r.detected_at);
    }
  }
}

TEST(MultihopInvariants, AlertsAreConservedWithoutFailures) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    InvariantWorld w(seed);
    w.churn(30.0);
    const auto& s = w.collection.stats();
    EXPECT_EQ(s.originated, 25ULL) << "seed " << seed;
    // Without node failures every alert ends in exactly one bucket (or is
    // still traveling at the horizon).
    EXPECT_EQ(s.delivered + s.delivered_predicted + s.dropped_ttl +
                  s.dropped_queue + w.collection.in_flight(),
              s.originated)
        << "seed " << seed;
    EXPECT_EQ(w.collection.records().size(),
              s.delivered + s.delivered_predicted);
  }
}

TEST(MultihopInvariants, HarnessIsDeterministic) {
  InvariantWorld a(9), b(9);
  a.churn(30.0);
  b.churn(30.0);
  EXPECT_EQ(a.mac.stats(), b.mac.stats());
  EXPECT_EQ(a.collection.stats(), b.collection.stats());
  ASSERT_EQ(a.collection.records().size(), b.collection.records().size());
  for (std::size_t i = 0; i < a.collection.records().size(); ++i) {
    EXPECT_EQ(a.collection.records()[i].path, b.collection.records()[i].path);
  }
}

}  // namespace
}  // namespace pas

// Whole-stack determinism: identical seeds must reproduce identical runs
// bit-for-bit. This is what makes the parallel sweep sound.
#include <gtest/gtest.h>

#include "world/paper_setup.hpp"
#include "world/scenario.hpp"

namespace pas::world {
namespace {

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]);
  }
  EXPECT_DOUBLE_EQ(a.metrics.avg_delay_s, b.metrics.avg_delay_s);
  EXPECT_DOUBLE_EQ(a.metrics.avg_energy_j, b.metrics.avg_energy_j);
  EXPECT_EQ(a.metrics.detected, b.metrics.detected);
  EXPECT_EQ(a.metrics.network.broadcasts, b.metrics.network.broadcasts);
  EXPECT_EQ(a.metrics.network.deliveries, b.metrics.network.deliveries);
  EXPECT_EQ(a.metrics.protocol.wakeups, b.metrics.protocol.wakeups);
  EXPECT_EQ(a.metrics.protocol.responses_sent, b.metrics.protocol.responses_sent);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].detected, b.outcomes[i].detected);
    EXPECT_DOUBLE_EQ(a.outcomes[i].energy_j, b.outcomes[i].energy_j);
  }
}

TEST(Determinism, SameSeedSameRunPas) {
  PaperSetupOverrides o;
  o.seed = 11;
  expect_identical(run_scenario(paper_scenario(o)),
                   run_scenario(paper_scenario(o)));
}

TEST(Determinism, SameSeedSameRunSas) {
  PaperSetupOverrides o;
  o.policy = core::Policy::kSas;
  o.seed = 13;
  expect_identical(run_scenario(paper_scenario(o)),
                   run_scenario(paper_scenario(o)));
}

TEST(Determinism, SameSeedSameRunWithLossAndFailures) {
  PaperSetupOverrides o;
  o.seed = 17;
  ScenarioConfig cfg = paper_scenario(o);
  cfg.channel = ChannelKind::kBernoulli;
  cfg.channel_loss = 0.2;
  cfg.failures.fraction = 0.2;
  cfg.failures.window_end_s = 60.0;
  expect_identical(run_scenario(cfg), run_scenario(cfg));
}

TEST(Determinism, DifferentSeedsDiffer) {
  PaperSetupOverrides a, b;
  a.seed = 1;
  b.seed = 2;
  const RunResult ra = run_scenario(paper_scenario(a));
  const RunResult rb = run_scenario(paper_scenario(b));
  EXPECT_NE(ra.positions[0], rb.positions[0]);
}

}  // namespace
}  // namespace pas::world

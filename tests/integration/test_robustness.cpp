// Robustness under the paper's §5 future-work conditions: lossy channels
// and node failures. The protocol must degrade gracefully — detection still
// happens (duty-cycled sensing is loss-independent), only the alerting gets
// weaker.
#include <gtest/gtest.h>

#include "world/paper_setup.hpp"
#include "world/sweep.hpp"

namespace pas::world {
namespace {

ScenarioConfig lossy(double loss, std::uint64_t seed = 1) {
  PaperSetupOverrides o;
  o.seed = seed;
  ScenarioConfig cfg = paper_scenario(o);
  if (loss > 0.0) {
    cfg.channel = ChannelKind::kBernoulli;
    cfg.channel_loss = loss;
  }
  return cfg;
}

TEST(Robustness, DetectionSurvivesHeavyLoss) {
  // Duty-cycled sensing does not depend on the radio: every non-censored
  // reached node detects even when half of all packets are lost.
  const auto agg = run_replicated(lossy(0.5), 4);
  for (const auto& run : agg.runs) {
    EXPECT_EQ(run.missed, 0U);
    EXPECT_EQ(run.detected + run.censored, run.reached);
  }
}

TEST(Robustness, LossIncreasesDelay) {
  const auto clean = run_replicated(lossy(0.0), 6);
  const auto noisy = run_replicated(lossy(0.6), 6);
  // Fewer RESPONSEs get through => alert belt forms later/thinner => the
  // average delay cannot improve.
  EXPECT_GE(noisy.delay_s.mean, clean.delay_s.mean * 0.9);
}

TEST(Robustness, GilbertElliottChannelRuns) {
  ScenarioConfig cfg = paper_scenario();
  cfg.channel = ChannelKind::kGilbertElliott;
  cfg.gilbert = {.p_good_to_bad = 0.1,
                 .p_bad_to_good = 0.3,
                 .loss_good = 0.02,
                 .loss_bad = 0.7};
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.metrics.detected, 0U);
  EXPECT_GT(r.metrics.network.dropped_channel, 0U);
}

TEST(Robustness, SurvivorsStillDetectUnderFailures) {
  ScenarioConfig cfg = paper_scenario();
  cfg.failures.fraction = 0.25;
  cfg.failures.window_start_s = 0.0;
  cfg.failures.window_end_s = 30.0;
  const auto r = run_scenario(cfg);
  // Ignore right-censored arrivals (the node's last sleep interval may
  // straddle the end of the run) — same cutoff run_scenario uses.
  const double cutoff = cfg.duration_s - cfg.protocol.sleep.max_s - 1.0;
  std::size_t surviving_reached = 0, surviving_detected = 0;
  for (const auto& o : r.outcomes) {
    if (!o.failed && o.was_reached && o.arrival <= cutoff) {
      ++surviving_reached;
      if (o.was_detected) ++surviving_detected;
    }
  }
  EXPECT_EQ(surviving_detected, surviving_reached);
  EXPECT_EQ(r.metrics.protocol.failures, 8U);  // round(0.25 * 30)
}

TEST(Robustness, FailuresReduceTrafficNotCorrectness) {
  ScenarioConfig healthy = paper_scenario();
  ScenarioConfig faulty = healthy;
  faulty.failures.fraction = 0.4;
  faulty.failures.window_end_s = 1.0;  // die before doing much
  const auto h = run_scenario(healthy);
  const auto f = run_scenario(faulty);
  EXPECT_LT(f.metrics.network.broadcasts, h.metrics.network.broadcasts);
}

}  // namespace
}  // namespace pas::world

// Whole-stack invariants swept across every (policy × stimulus) pair.
// These must hold regardless of tuning:
//   * causality — no node detects before the stimulus reaches it;
//   * sensing soundness — at detection time the model reports coverage;
//   * delay bound — detection lags arrival by at most max-sleep (+ numeric
//     slack) for monotone (non-receding) stimuli;
//   * accounting — per-node energy components are non-negative and total
//     run time splits exactly into active + sleep time;
//   * conservation — detected + missed + censored = reached.
#include <gtest/gtest.h>

#include <tuple>

#include "core/policy.hpp"
#include "world/paper_setup.hpp"
#include "world/scenario.hpp"

namespace pas::world {
namespace {

using Case = std::tuple<core::Policy, StimulusKind, std::uint64_t>;

class InvariantSweep : public ::testing::TestWithParam<Case> {};

TEST_P(InvariantSweep, HoldsEndToEnd) {
  const auto [policy, stimulus, seed] = GetParam();
  PaperSetupOverrides o;
  o.policy = policy;
  o.stimulus = stimulus;
  o.seed = seed;
  ScenarioConfig cfg = paper_scenario(o);
  if (stimulus == StimulusKind::kPde) {
    cfg.pde.nx = 48;  // keep the sweep fast
    cfg.pde.ny = 48;
  }

  const auto model = make_stimulus(cfg);
  const RunResult r = run_scenario(cfg);

  // The policy's own worst-case interval is the delay bound (sleep.max_s
  // for ramping policies, period_s for DutyCycle).
  const auto policy_obj = core::make_policy(cfg.protocol);
  const bool monotone = stimulus != StimulusKind::kPlume;
  for (const auto& oc : r.outcomes) {
    if (oc.was_detected) {
      // Causality and sensing soundness (+1 µs: detections scheduled at the
      // exact arrival instant sit on the coverage boundary, where the
      // closed-form inversion is one ulp away from covered()).
      EXPECT_GE(oc.detected, oc.arrival - 1e-9) << "node " << oc.id;
      EXPECT_TRUE(model->covered(oc.position, oc.detected + 1e-6))
          << "node " << oc.id << " detected at " << oc.detected;
      if (monotone) {
        EXPECT_LE(oc.delay_s, policy_obj->max_sleep_s() + 1e-6)
            << "node " << oc.id;
      }
    }
    // Energy accounting.
    EXPECT_GE(oc.energy_sleep_j, 0.0);
    EXPECT_GE(oc.energy_active_j, 0.0);
    EXPECT_GE(oc.energy_tx_j, 0.0);
    EXPECT_GE(oc.energy_transition_j, 0.0);
    EXPECT_NEAR(oc.active_s + oc.sleep_s, cfg.duration_s, 1e-6)
        << "node " << oc.id;
  }

  EXPECT_EQ(r.metrics.detected + r.metrics.missed + r.metrics.censored,
            r.metrics.reached);
  EXPECT_EQ(r.metrics.node_count, cfg.deployment.count);

  // NS never misses anything it was reached by.
  if (policy == core::Policy::kNeverSleep) {
    EXPECT_EQ(r.metrics.missed, 0U);
    EXPECT_EQ(r.metrics.censored, 0U);
  }
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const core::Policy policy = std::get<0>(info.param);
  const StimulusKind stimulus = std::get<1>(info.param);
  const std::uint64_t seed = std::get<2>(info.param);
  std::string stim = to_string(stimulus);
  if (stim == "two-sources") stim = "twosources";
  return std::string(core::to_string(policy)) + "_" + stim + "_seed" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByStimulus, InvariantSweep,
    ::testing::Combine(
        ::testing::Values(core::Policy::kNeverSleep, core::Policy::kSas,
                          core::Policy::kPas, core::Policy::kDutyCycle,
                          core::Policy::kThresholdHold),
        ::testing::Values(StimulusKind::kRadial, StimulusKind::kPde,
                          StimulusKind::kPlume, StimulusKind::kTwoSources),
        ::testing::Values(1ULL, 17ULL)),
    case_name);

}  // namespace
}  // namespace pas::world

// Golden-seed trace pinning.
//
// The event-queue rewrite (slot-map ids, SmallFn callbacks, workspace reuse)
// must not change *when* anything happens: the kernel's contract is strict
// (time, seq) order, so at a fixed seed the full trace — every state change,
// message and detection, in execution order — is a deterministic function of
// the scenario. These tests pin an order-sensitive digest of that trace (and
// the headline metrics) to values recorded before the rewrite; any reordering
// of simultaneous events, renumbered sequence ids, or skew in scheduling
// shows up as a digest mismatch.
//
// If a deliberate semantic change to the protocol or kernel ever invalidates
// these values, re-record them (the failure message prints the new digest)
// and say so in the commit message — silently updating them defeats the test.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "world/paper_setup.hpp"
#include "world/scenario.hpp"

namespace pas {
namespace {

/// FNV-1a over the order-sensitive (time-bits, category, node) stream.
/// Trace text is excluded: it embeds iostream float formatting, which is
/// not something the kernel contract covers.
std::uint64_t trace_digest(const sim::TraceLog& log) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& e : log.events()) {
    mix(std::bit_cast<std::uint64_t>(e.time), 8);
    mix(static_cast<std::uint64_t>(e.category), 1);
    mix(e.node, 4);
  }
  return h;
}

struct GoldenCase {
  core::Policy policy;
  world::StimulusKind stimulus;
  std::uint64_t seed;
};

world::RunResult run_golden(const GoldenCase& c) {
  world::PaperSetupOverrides o;
  o.policy = c.policy;
  o.stimulus = c.stimulus;
  o.seed = c.seed;
  auto cfg = world::paper_scenario(o);
  cfg.enable_trace = true;
  return world::run_scenario(cfg);
}

TEST(GoldenTrace, PasRadialSeed7) {
  const auto result =
      run_golden({core::Policy::kPas, world::StimulusKind::kRadial, 7});
  EXPECT_EQ(result.trace.size(), 2506ULL);
  EXPECT_EQ(trace_digest(result.trace), 17162469235034116036ULL);
  EXPECT_DOUBLE_EQ(result.metrics.avg_delay_s, 1.9454927289532069);
  EXPECT_DOUBLE_EQ(result.metrics.avg_energy_j, 2.4674608514520506);
  EXPECT_EQ(result.metrics.network.broadcasts, 1061ULL);
}

TEST(GoldenTrace, SasRadialSeed5) {
  const auto result =
      run_golden({core::Policy::kSas, world::StimulusKind::kRadial, 5});
  EXPECT_EQ(result.trace.size(), 1947ULL);
  EXPECT_EQ(trace_digest(result.trace), 17488045833677978407ULL);
  EXPECT_DOUBLE_EQ(result.metrics.avg_delay_s, 2.9190164395424607);
  EXPECT_EQ(result.metrics.network.broadcasts, 718ULL);
}

// The NS and SAS-plume pins below were recorded on the pre-policy-layer
// engine (the monolithic Policy::k* branches) immediately before the
// SleepingPolicy extraction; together with the three cases above they pin
// all three paper policies byte-identical across that refactor.
TEST(GoldenTrace, NsRadialSeed3) {
  const auto result =
      run_golden({core::Policy::kNeverSleep, world::StimulusKind::kRadial, 3});
  EXPECT_EQ(result.trace.size(), 26ULL);
  EXPECT_EQ(trace_digest(result.trace), 15838959098395050619ULL);
  // NS detects instantly and never transmits.
  EXPECT_DOUBLE_EQ(result.metrics.avg_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.avg_energy_j, 6.1500000000000004);
  EXPECT_EQ(result.metrics.network.broadcasts, 0ULL);
  EXPECT_EQ(result.metrics.protocol.wakeups, 0ULL);
}

TEST(GoldenTrace, SasPlumeSeed13) {
  const auto result =
      run_golden({core::Policy::kSas, world::StimulusKind::kPlume, 13});
  EXPECT_EQ(result.trace.size(), 1339ULL);
  EXPECT_EQ(trace_digest(result.trace), 13304074358141853687ULL);
  EXPECT_DOUBLE_EQ(result.metrics.avg_delay_s, 1.3592797699138859);
  EXPECT_DOUBLE_EQ(result.metrics.avg_energy_j, 4.1165600663669917);
  EXPECT_EQ(result.metrics.network.broadcasts, 463ULL);
  EXPECT_EQ(result.metrics.protocol.wakeups, 270ULL);
}

TEST(GoldenTrace, PasPlumeSeed11) {
  const auto result =
      run_golden({core::Policy::kPas, world::StimulusKind::kPlume, 11});
  EXPECT_EQ(result.trace.size(), 1444ULL);
  EXPECT_EQ(trace_digest(result.trace), 12986474686639448774ULL);
  EXPECT_DOUBLE_EQ(result.metrics.avg_delay_s, 1.2586999345172689);
  // The plume at paper settings dissolves only after the 150 s horizon, so
  // no covered→safe timeout fires; the zero is still pinned deliberately.
  EXPECT_EQ(result.metrics.protocol.covered_timeouts, 0ULL);
}

}  // namespace
}  // namespace pas

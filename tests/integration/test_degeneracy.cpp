// The paper's analytical claim (§3.4): "By greatly reducing the threshold
// value of alert time, PAS can degenerate into SAS." With T_alert → 0 the
// alert belt vanishes, so PAS's extra machinery (alert participation,
// cosine projection) has nothing to act on and its delay/energy statistics
// collapse toward SAS-without-alerting behaviour.
#include <gtest/gtest.h>

#include "world/paper_setup.hpp"
#include "world/sweep.hpp"

namespace pas::world {
namespace {

ReplicatedMetrics run_policy(core::Policy policy, double alert_threshold,
                             std::size_t reps = 5) {
  PaperSetupOverrides o;
  o.policy = policy;
  o.alert_threshold_s = alert_threshold;
  return run_replicated(paper_scenario(o), reps);
}

TEST(Degeneracy, TinyAlertThresholdCollapsesPasTowardSas) {
  const auto pas_tiny = run_policy(core::Policy::kPas, 0.5);
  const auto sas_tiny = run_policy(core::Policy::kSas, 0.5);
  // With no alert belt both policies reduce to pure duty-cycled sampling:
  // delays agree to within replication noise (generous 35% band).
  ASSERT_GT(pas_tiny.delay_s.mean, 0.0);
  const double rel_gap =
      std::abs(pas_tiny.delay_s.mean - sas_tiny.delay_s.mean) /
      sas_tiny.delay_s.mean;
  EXPECT_LT(rel_gap, 0.35);
}

TEST(Degeneracy, TinyThresholdPasLosesItsDelayAdvantage) {
  const auto pas_full = run_policy(core::Policy::kPas, 20.0);
  const auto pas_tiny = run_policy(core::Policy::kPas, 0.5);
  // The alert mechanism is what buys delay; removing it must cost delay.
  EXPECT_GT(pas_tiny.delay_s.mean, pas_full.delay_s.mean);
}

TEST(Degeneracy, TinyThresholdAlsoCutsEnergyTowardSleeperFloor) {
  const auto pas_full = run_policy(core::Policy::kPas, 25.0);
  const auto pas_tiny = run_policy(core::Policy::kPas, 0.5);
  EXPECT_LT(pas_tiny.energy_j.mean, pas_full.energy_j.mean);
}

}  // namespace
}  // namespace pas::world

// Integration tests pinning the *shape* claims of the paper's evaluation
// (§4.2/§4.3) — the same relations the benches print, asserted with
// replication averaging so they are robust to seed noise:
//
//   Fig 4: NS delay ≡ 0; PAS and SAS delay grow with max sleep; PAS < SAS.
//   Fig 5: PAS delay decreases as the alert threshold grows.
//   Fig 6: NS energy highest; PAS ≥ SAS; sleepers fall with max sleep.
//   Fig 7: PAS energy increases with the alert threshold.
#include <gtest/gtest.h>

#include "world/paper_setup.hpp"
#include "world/sweep.hpp"

namespace pas::world {
namespace {

constexpr std::size_t kReps = 15;

ReplicatedMetrics run(core::Policy policy, double max_sleep,
                      double alert_threshold) {
  PaperSetupOverrides o;
  o.policy = policy;
  o.max_sleep_s = max_sleep;
  o.alert_threshold_s = alert_threshold;
  return run_replicated(paper_scenario(o), kReps);
}

TEST(Fig4Shape, NsHasZeroDelay) {
  const auto ns = run(core::Policy::kNeverSleep, 20.0, 20.0);
  EXPECT_NEAR(ns.delay_s.mean, 0.0, 1e-9);
}

TEST(Fig4Shape, PasDelayBelowSas) {
  const auto pas = run(core::Policy::kPas, 20.0, 20.0);
  const auto sas = run(core::Policy::kSas, 20.0, 20.0);
  EXPECT_GT(pas.delay_s.mean, 0.0);
  EXPECT_LT(pas.delay_s.mean, sas.delay_s.mean);
}

TEST(Fig4Shape, DelayGrowsWithMaxSleep) {
  const auto short_sleep = run(core::Policy::kPas, 5.0, 20.0);
  const auto long_sleep = run(core::Policy::kPas, 35.0, 20.0);
  EXPECT_LT(short_sleep.delay_s.mean, long_sleep.delay_s.mean);
  const auto sas_short = run(core::Policy::kSas, 5.0, 20.0);
  const auto sas_long = run(core::Policy::kSas, 35.0, 20.0);
  EXPECT_LT(sas_short.delay_s.mean, sas_long.delay_s.mean);
}

TEST(Fig5Shape, PasDelayFallsWithAlertThreshold) {
  const auto low = run(core::Policy::kPas, 20.0, 10.0);
  const auto high = run(core::Policy::kPas, 20.0, 30.0);
  EXPECT_LT(high.delay_s.mean, low.delay_s.mean);
}

TEST(Fig6Shape, NsEnergyHighestAndFlat) {
  const auto ns5 = run(core::Policy::kNeverSleep, 5.0, 20.0);
  const auto ns35 = run(core::Policy::kNeverSleep, 35.0, 20.0);
  const auto pas = run(core::Policy::kPas, 20.0, 20.0);
  const auto sas = run(core::Policy::kSas, 20.0, 20.0);
  // NS is flat in max sleep (it never sleeps)...
  EXPECT_NEAR(ns5.energy_j.mean, ns35.energy_j.mean,
              0.01 * ns5.energy_j.mean);
  // ...and far above either sleeping policy. (The exact factor depends on
  // how much of the field ends up covered — covered nodes are active under
  // every policy — so assert a conservative 1.6×; measured ≈2× — see EXPERIMENTS.md.)
  EXPECT_GT(ns5.energy_j.mean, 1.6 * pas.energy_j.mean);
  EXPECT_GT(ns5.energy_j.mean, 1.6 * sas.energy_j.mean);
}

TEST(Fig6Shape, PasCostsAtLeastSas) {
  // PAS activates not only neighbors but also far-away sensors (§4.3); its
  // energy sits at or slightly above SAS.
  const auto pas = run(core::Policy::kPas, 20.0, 20.0);
  const auto sas = run(core::Policy::kSas, 20.0, 20.0);
  EXPECT_GE(pas.energy_j.mean, 0.95 * sas.energy_j.mean);
  // "the difference is trivial" — bounded above too.
  EXPECT_LT(pas.energy_j.mean, 3.0 * sas.energy_j.mean);
}

TEST(Fig6Shape, SleeperEnergyFallsWithMaxSleep) {
  const auto short_sleep = run(core::Policy::kPas, 5.0, 20.0);
  const auto long_sleep = run(core::Policy::kPas, 35.0, 20.0);
  EXPECT_GT(short_sleep.energy_j.mean, long_sleep.energy_j.mean);
}

TEST(Fig7Shape, PasEnergyGrowsWithAlertThreshold) {
  const auto low = run(core::Policy::kPas, 20.0, 10.0);
  const auto high = run(core::Policy::kPas, 20.0, 30.0);
  EXPECT_GT(high.energy_j.mean, low.energy_j.mean);
}

TEST(AlertMechanism, PasAlertsMoreNodesThanSas) {
  PaperSetupOverrides o;
  o.policy = core::Policy::kPas;
  const auto pas = run_scenario(paper_scenario(o));
  o.policy = core::Policy::kSas;
  const auto sas = run_scenario(paper_scenario(o));
  EXPECT_GE(pas.metrics.protocol.alert_entries,
            sas.metrics.protocol.alert_entries);
}

}  // namespace
}  // namespace pas::world

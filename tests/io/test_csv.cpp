#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pas::io {
namespace {

TEST(CsvEscape, PlainFieldsUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("1.5"), "1.5");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.row({"1", "2"});
  w.row({"x,y", "3"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n\"x,y\",3\n");
  EXPECT_EQ(w.rows_written(), 2U);
}

TEST(CsvWriter, RowWidthMismatchThrows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), std::logic_error);
}

TEST(CsvWriter, DoubleHeaderThrows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), std::logic_error);
}

TEST(CsvWriter, RowsWithoutHeaderAllowed) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"1", "2", "3"});
  w.row({"4"});  // no header => no width check
  EXPECT_EQ(os.str(), "1,2,3\n4\n");
}

TEST(CsvWriter, RowValuesFormatsDoubles) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row_values({1.5, 2.0, 0.25});
  EXPECT_EQ(os.str(), "1.5,2,0.25\n");
}

TEST(FormatDouble, RoundTripAndSpecials) {
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(-3.0), "-3");
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace pas::io

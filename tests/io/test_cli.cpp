#include "io/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace pas::io {
namespace {

TEST(Cli, ParsesTypedOptions) {
  std::int64_t count = 10;
  double rate = 1.5;
  bool verbose = false;
  std::string name = "default";
  Cli cli("prog", "test");
  cli.add_int("count", &count, "a count");
  cli.add_double("rate", &rate, "a rate");
  cli.add_flag("verbose", &verbose, "verbosity");
  cli.add_string("name", &name, "a name");

  const std::array<const char*, 8> argv{"prog",   "--count", "42",
                                        "--rate", "2.25",    "--verbose",
                                        "--name", "pas"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(rate, 2.25);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "pas");
}

TEST(Cli, EqualsSyntax) {
  std::int64_t n = 0;
  Cli cli("prog", "test");
  cli.add_int("n", &n, "n");
  const std::array<const char*, 2> argv{"prog", "--n=7"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(n, 7);
}

TEST(Cli, FlagWithExplicitValue) {
  bool flag = true;
  Cli cli("prog", "test");
  cli.add_flag("flag", &flag, "f");
  const std::array<const char*, 2> argv{"prog", "--flag=false"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(flag);
}

TEST(Cli, UnknownOptionFails) {
  Cli cli("prog", "test");
  const std::array<const char*, 2> argv{"prog", "--nope"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.status(), 2);
}

TEST(Cli, BadValueFails) {
  std::int64_t n = 0;
  Cli cli("prog", "test");
  cli.add_int("n", &n, "n");
  const std::array<const char*, 3> argv{"prog", "--n", "abc"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.status(), 2);
}

TEST(Cli, MissingValueFails) {
  std::int64_t n = 0;
  Cli cli("prog", "test");
  cli.add_int("n", &n, "n");
  const std::array<const char*, 2> argv{"prog", "--n"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpReturnsFalseWithStatusZero) {
  Cli cli("prog", "test");
  const std::array<const char*, 2> argv{"prog", "--help"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.status(), 0);
}

TEST(Cli, HelpTextListsOptionsAndDefaults) {
  std::int64_t n = 5;
  Cli cli("prog", "does things");
  cli.add_int("n", &n, "the n");
  const std::string h = cli.help();
  EXPECT_NE(h.find("--n"), std::string::npos);
  EXPECT_NE(h.find("default: 5"), std::string::npos);
  EXPECT_NE(h.find("does things"), std::string::npos);
}

TEST(Cli, PositionalArgumentsCollected) {
  Cli cli("prog", "test");
  const std::array<const char*, 3> argv{"prog", "pos1", "pos2"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Cli, DuplicateOptionThrows) {
  std::int64_t n = 0;
  Cli cli("prog", "test");
  cli.add_int("n", &n, "n");
  EXPECT_THROW(cli.add_int("n", &n, "again"), std::logic_error);
}

}  // namespace
}  // namespace pas::io

#include "io/table.hpp"

#include <gtest/gtest.h>

namespace pas::io {
namespace {

TEST(Fixed, FormatsPrecision) {
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fixed(1.0, 3), "1.000");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(Table, AddRowValuesUsesPrecision) {
  Table t({"v"});
  t.add_row_values({1.23456}, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
  EXPECT_EQ(t.rows(), 1U);
}

}  // namespace
}  // namespace pas::io

#include "io/json.hpp"

#include <gtest/gtest.h>

namespace pas::io {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(3.5).dump(), "3.5");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(Json("a\nb").dump(), "\"a\\nb\"");
  EXPECT_EQ(Json(std::string("a\tb")).dump(), "\"a\\tb\"");
}

TEST(Json, NanBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, ObjectBuildsViaIndex) {
  Json j;
  j["b"] = 2;
  j["a"] = 1;
  // std::map ordering => keys sorted => stable output.
  EXPECT_EQ(j.dump(), "{\"a\":1,\"b\":2}");
}

TEST(Json, ArrayPushBack) {
  Json j;
  j.push_back(1);
  j.push_back("two");
  j.push_back(Json(nullptr));
  EXPECT_EQ(j.dump(), "[1,\"two\",null]");
}

TEST(Json, NestedStructures) {
  Json j;
  j["list"].push_back(1);
  j["list"].push_back(2);
  j["meta"]["name"] = "pas";
  EXPECT_EQ(j.dump(), "{\"list\":[1,2],\"meta\":{\"name\":\"pas\"}}");
}

TEST(Json, EmptyContainers) {
  Json arr{JsonArray{}};
  Json obj{JsonObject{}};
  EXPECT_EQ(arr.dump(), "[]");
  EXPECT_EQ(obj.dump(), "{}");
}

TEST(Json, PrettyPrinting) {
  Json j;
  j["a"] = 1;
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, TypeErrorsThrow) {
  Json j(3.0);
  EXPECT_THROW(j["k"] = 1, std::logic_error);
  EXPECT_THROW(j.push_back(1), std::logic_error);
}

}  // namespace
}  // namespace pas::io

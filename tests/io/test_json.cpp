#include "io/json.hpp"

#include <gtest/gtest.h>

namespace pas::io {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(3.5).dump(), "3.5");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(Json("a\nb").dump(), "\"a\\nb\"");
  EXPECT_EQ(Json(std::string("a\tb")).dump(), "\"a\\tb\"");
}

TEST(Json, NanBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, ObjectBuildsViaIndex) {
  Json j;
  j["b"] = 2;
  j["a"] = 1;
  // std::map ordering => keys sorted => stable output.
  EXPECT_EQ(j.dump(), "{\"a\":1,\"b\":2}");
}

TEST(Json, ArrayPushBack) {
  Json j;
  j.push_back(1);
  j.push_back("two");
  j.push_back(Json(nullptr));
  EXPECT_EQ(j.dump(), "[1,\"two\",null]");
}

TEST(Json, NestedStructures) {
  Json j;
  j["list"].push_back(1);
  j["list"].push_back(2);
  j["meta"]["name"] = "pas";
  EXPECT_EQ(j.dump(), "{\"list\":[1,2],\"meta\":{\"name\":\"pas\"}}");
}

TEST(Json, EmptyContainers) {
  Json arr{JsonArray{}};
  Json obj{JsonObject{}};
  EXPECT_EQ(arr.dump(), "[]");
  EXPECT_EQ(obj.dump(), "{}");
}

TEST(Json, PrettyPrinting) {
  Json j;
  j["a"] = 1;
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, TypeErrorsThrow) {
  Json j(3.0);
  EXPECT_THROW(j["k"] = 1, std::logic_error);
  EXPECT_THROW(j.push_back(1), std::logic_error);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-2e3").as_double(), -2000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(JsonParse, Containers) {
  const Json j = Json::parse(R"({"a": [1, 2, 3], "b": {"c": true}, "d": null})");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.at("a").as_array().size(), 3U);
  EXPECT_DOUBLE_EQ(j.at("a").as_array()[1].as_double(), 2.0);
  EXPECT_TRUE(j.at("b").at("c").as_bool());
  EXPECT_TRUE(j.at("d").is_null());
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("z"));
}

TEST(JsonParse, WhitespaceAndEmpty) {
  EXPECT_TRUE(Json::parse(" \n\t{ } ").is_object());
  EXPECT_TRUE(Json::parse("[]").is_array());
  EXPECT_EQ(Json::parse("[ ]").as_array().size(), 0U);
}

TEST(JsonParse, RoundTripsDump) {
  Json j;
  j["name"] = "pas";
  j["values"].push_back(1.5);
  j["values"].push_back(-2.25);
  j["nested"]["flag"] = true;
  const Json reparsed = Json::parse(j.dump(2));
  EXPECT_EQ(reparsed.dump(), j.dump());
}

TEST(JsonParse, MalformedThrows) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
}

TEST(JsonParse, AccessorFallbacks) {
  const Json j = Json::parse(R"({"n": 4, "s": "x", "f": false})");
  EXPECT_DOUBLE_EQ(j.number_or("n", 9.0), 4.0);
  EXPECT_DOUBLE_EQ(j.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(j.string_or("s", "d"), "x");
  EXPECT_EQ(j.string_or("missing", "d"), "d");
  EXPECT_FALSE(j.bool_or("f", true));
  EXPECT_TRUE(j.bool_or("missing", true));
  EXPECT_THROW((void)j.at("missing"), std::runtime_error);
  EXPECT_THROW((void)j.at("n").as_string(), std::runtime_error);
}

}  // namespace
}  // namespace pas::io

#include "energy/power_profile.hpp"

#include <gtest/gtest.h>

namespace pas::energy {
namespace {

TEST(PowerProfile, TelosMatchesPaperTable1) {
  constexpr PowerProfile p = PowerProfile::telos();
  EXPECT_DOUBLE_EQ(p.mcu_active_w, 3e-3);     // Active power 3 mW
  EXPECT_DOUBLE_EQ(p.sleep_w, 15e-6);         // Sleep power 15 µW
  EXPECT_DOUBLE_EQ(p.radio_rx_w, 38e-3);      // Receive power 38 mW
  EXPECT_DOUBLE_EQ(p.radio_tx_w, 35e-3);      // Transition/transmit 35 mW
  EXPECT_DOUBLE_EQ(p.data_rate_bps, 250e3);   // Data rate 250 kbps
  EXPECT_DOUBLE_EQ(p.total_active_w(), 41e-3);  // Total active 41 mW
}

TEST(PowerProfile, TxDurationFromDataRate) {
  constexpr PowerProfile p = PowerProfile::telos();
  // 250 kbps => 1000 bits takes 4 ms.
  EXPECT_DOUBLE_EQ(p.tx_duration(1000), 0.004);
  EXPECT_DOUBLE_EQ(p.tx_duration(0), 0.0);
}

TEST(PowerProfile, TxAndRxEnergy) {
  constexpr PowerProfile p = PowerProfile::telos();
  EXPECT_DOUBLE_EQ(p.tx_energy(1000), 35e-3 * 0.004);
  EXPECT_DOUBLE_EQ(p.rx_energy(1000), 38e-3 * 0.004);
}

TEST(PowerProfile, TransitionEnergy) {
  constexpr PowerProfile p = PowerProfile::telos();
  EXPECT_DOUBLE_EQ(p.transition_energy(), 35e-3 * 2.45e-3);
}

TEST(PowerProfile, SleepIsOrdersOfMagnitudeBelowActive) {
  constexpr PowerProfile p = PowerProfile::telos();
  EXPECT_LT(p.sleep_w * 1000.0, p.total_active_w());
}

}  // namespace
}  // namespace pas::energy

#include "energy/energy_meter.hpp"

#include <gtest/gtest.h>

namespace pas::energy {
namespace {

constexpr PowerProfile kTelos = PowerProfile::telos();

TEST(EnergyMeter, AccruesActivePower) {
  EnergyMeter m(kTelos, 0.0, PowerMode::kActive);
  m.finalize(10.0);
  EXPECT_DOUBLE_EQ(m.active_j(), 41e-3 * 10.0);
  EXPECT_DOUBLE_EQ(m.sleep_j(), 0.0);
  EXPECT_DOUBLE_EQ(m.active_s(), 10.0);
}

TEST(EnergyMeter, AccruesSleepPower) {
  EnergyMeter m(kTelos, 0.0, PowerMode::kSleep);
  m.finalize(100.0);
  EXPECT_DOUBLE_EQ(m.sleep_j(), 15e-6 * 100.0);
  EXPECT_DOUBLE_EQ(m.sleep_s(), 100.0);
}

TEST(EnergyMeter, ModeSwitchSplitsIntervalsAndBooksTransition) {
  EnergyMeter m(kTelos, 0.0, PowerMode::kActive);
  m.set_mode(PowerMode::kSleep, 4.0);
  m.set_mode(PowerMode::kActive, 9.0);
  m.finalize(10.0);
  EXPECT_DOUBLE_EQ(m.active_s(), 5.0);  // [0,4) + [9,10)
  EXPECT_DOUBLE_EQ(m.sleep_s(), 5.0);   // [4,9)
  EXPECT_EQ(m.transitions(), 2U);
  EXPECT_DOUBLE_EQ(m.transition_j(), 2.0 * kTelos.transition_energy());
}

TEST(EnergyMeter, RedundantModeSetIsFree) {
  EnergyMeter m(kTelos, 0.0, PowerMode::kActive);
  m.set_mode(PowerMode::kActive, 5.0);
  EXPECT_EQ(m.transitions(), 0U);
  EXPECT_DOUBLE_EQ(m.transition_j(), 0.0);
}

TEST(EnergyMeter, TxEnergyAndCount) {
  EnergyMeter m(kTelos, 0.0, PowerMode::kActive);
  m.add_tx(1000);
  m.add_tx(2000);
  EXPECT_EQ(m.tx_count(), 2U);
  EXPECT_DOUBLE_EQ(m.tx_j(), kTelos.tx_energy(1000) + kTelos.tx_energy(2000));
}

TEST(EnergyMeter, RxEnergyAndCount) {
  EnergyMeter m(kTelos, 0.0, PowerMode::kActive);
  m.add_rx(500);
  EXPECT_EQ(m.rx_count(), 1U);
  EXPECT_DOUBLE_EQ(m.rx_j(), kTelos.rx_energy(500));
}

TEST(EnergyMeter, TotalIncludesOpenInterval) {
  EnergyMeter m(kTelos, 0.0, PowerMode::kActive);
  // Without finalize, total_j(now) prices the open interval.
  EXPECT_DOUBLE_EQ(m.total_j(2.0), 41e-3 * 2.0);
  m.add_tx(1000);
  EXPECT_DOUBLE_EQ(m.total_j(2.0), 41e-3 * 2.0 + kTelos.tx_energy(1000));
}

TEST(EnergyMeter, NsVersusSleeperOverSameWindow) {
  // The core economics of the paper: a sleeping node costs ~3 orders of
  // magnitude less than an always-on node over the same window.
  EnergyMeter ns(kTelos, 0.0, PowerMode::kActive);
  EnergyMeter sleeper(kTelos, 0.0, PowerMode::kSleep);
  ns.finalize(150.0);
  sleeper.finalize(150.0);
  EXPECT_GT(ns.total_j(150.0), 1000.0 * sleeper.total_j(150.0));
}

TEST(EnergyMeter, NonFiniteStartHandledByConstruction) {
  // Meter honours a nonzero start time: nothing accrues before it.
  EnergyMeter m(kTelos, 5.0, PowerMode::kActive);
  m.finalize(6.0);
  EXPECT_DOUBLE_EQ(m.active_s(), 1.0);
}

}  // namespace
}  // namespace pas::energy
